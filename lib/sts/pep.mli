(** The token-validating policy evaluation point.

    A wrapper PEP: it admits a request only when the requester's
    credential carries a valid STS token (signature, window, audience,
    subject binding, entitlement, revocation via an attached
    {!Validator}), then delegates the actual policy decision to the
    resource's inner callout. For non-revoked, fully-entitled subjects
    the decision {e and reason} are therefore identical to the plain
    proxy path — the property the differential test gate checks.

    Every check emits a ["token.validated"] wide event (outcome, jti,
    subject, expiry) — the record the safety monitor's token-revocation
    invariant consumes — and counts under
    [token_checks_total{outcome}]. *)

type clock = unit -> Grid_sim.Clock.time

val library : string
(** ["libsts_authz.so"] — the {!Grid_callout.Registry} library name. *)

val symbol : string
(** ["sts_authz_callout"]. *)

val callout :
  ?obs:Grid_obs.Obs.t ->
  ?validator:Validator.t ->
  sts_key:Grid_crypto.Keypair.public ->
  audience:string ->
  now:clock ->
  Grid_callout.Callout.t ->
  Grid_callout.Callout.t
(** [callout ~sts_key ~audience ~now inner]: validate the carried token,
    then ask [inner]. Fails closed ([Denied]) without a credential or
    token; an undecodable token is a [System_error]. Without [validator]
    no revocation state is consulted (the stateless mode). *)

val batch :
  ?obs:Grid_obs.Obs.t ->
  ?validator:Validator.t ->
  sts_key:Grid_crypto.Keypair.public ->
  audience:string ->
  now:clock ->
  Grid_callout.Callout.Batch.t ->
  Grid_callout.Callout.Batch.t
(** Batched sibling: tokens are checked per-query, the surviving
    sub-batch goes to the inner [many] lane in one call (preserving its
    amortization), and answers return in request order — element-wise
    equal to mapping the single lane. *)
