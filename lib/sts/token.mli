(** Short-TTL capability tokens minted by the Security Token Service.

    A token is the STS's counterpart to a CAS capability credential: a
    signed assertion that [subject] may exercise [entitlements] against
    [audience] until [not_after]. Where CAS capabilities are long-lived
    and leave revocation to CRL propagation, tokens are short-lived by
    construction — the [jti] names the individual grant so a stateful
    revocation layer can kill one token, and the short window bounds the
    exposure when no such layer runs (the stateless mode).

    Tokens travel like capabilities do: embedded as a (non-critical)
    extension of a delegated proxy certificate, so the unmodified GRAM
    request path carries them to the resource's token-validating PEP. *)

type t = {
  subject : Grid_gsi.Dn.t;  (** the only identity that may wield it *)
  audience : string;  (** resource scope it is bound to; ["*"] = any *)
  entitlements : string list;
      (** action names the token may authorize; [["*"]] = all actions *)
  jti : string;  (** unique token id, the revocation handle *)
  epoch : int;  (** the STS trust-configuration epoch at mint time *)
  issued_at : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;  (** by the STS key over the canonical encoding *)
}

val make :
  subject:Grid_gsi.Dn.t ->
  audience:string ->
  entitlements:string list ->
  jti:string ->
  epoch:int ->
  issued_at:Grid_sim.Clock.time ->
  not_after:Grid_sim.Clock.time ->
  signing_key:Grid_crypto.Keypair.secret ->
  t

type verify_error =
  | Bad_signature
  | Expired
  | Not_yet_valid
  | Audience_mismatch of { bound : string; presented_to : string }
  | Subject_mismatch of { bound : Grid_gsi.Dn.t; presenter : Grid_gsi.Dn.t }

val verify_error_to_string : verify_error -> string

val verify :
  t ->
  sts_key:Grid_crypto.Keypair.public ->
  presenter:Grid_gsi.Dn.t ->
  audience:string ->
  now:Grid_sim.Clock.time ->
  (unit, verify_error) result
(** Signature, validity window, audience binding and subject binding, in
    that order. Revocation is the validator's concern, not the token's. *)

val permits : t -> Grid_policy.Types.Action.t -> bool
(** Whether the token's entitlements cover an action. *)

(** {1 Wire encoding} *)

val encode : t -> string
(** Injective length-prefixed encoding ({!Grid_util.Wire}); adversarial
    DN components or entitlement strings cannot alias another token. *)

val decode : string -> (t, string) result

val extension_oid : string
(** ["sts-token"] — the proxy-certificate extension OID tokens ride in. *)

val to_extension : t -> Grid_gsi.Cert.extension

val find_in_credential : Grid_gsi.Credential.t -> (t, string) result option
(** The first token extension anywhere in the presented chain; [None]
    when the credential carries no token. *)

val credential_deadline : Grid_gsi.Credential.t -> Grid_sim.Clock.time option
(** [not_after] of the token carried by a credential, when one decodes —
    the extra deadline the decision cache caps token-authorized entries
    by. *)
