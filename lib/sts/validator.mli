(** Resource-side revocation view for STS tokens.

    One validator per resource (fleet member). Its mode decides how
    revocations reach it — and therefore the revocation-to-enforcement
    window the deployment accepts:

    - [Short_ttl]: stateless. No revocation state is held; the token's
      own expiry is the only enforcement, so the window is the token
      TTL.
    - [Push]: the STS pushes revocation deltas in-band over
      {!Grid_sim.Network}; the window is the declared push bound
      (delivery latency).
    - [Pull]: the validator periodically fetches the STS's CRL snapshot
      from {!Grid_sim.Disk}-backed persistence (the object-store CRL of
      the access-token RFC); the window is the poll interval plus fetch
      slack.

    Every applied revocation can flush dependent state — the decision
    cache registers an {!on_revocation} hook so a cached permit never
    outlives the [jti] that earned it. *)

type mode =
  | Short_ttl
  | Push
  | Pull

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
val all_modes : mode list

(** One revoked grant, as distributed. [subject] is carried so
    subject-wide revocations follow the token even where the [jti] was
    never seen. *)
type entry = {
  jti : string;
  subject : string;
  revoked_at : Grid_sim.Clock.time;
}

val encode_crl : entry list -> string
(** Injective wire form of a CRL snapshot ({!Grid_util.Wire}). *)

val decode_crl : string -> entry list option

type t

val create :
  mode:mode ->
  engine:Grid_sim.Engine.t ->
  ?obs:Grid_obs.Obs.t ->
  ?token_ttl:Grid_sim.Clock.time ->
  ?push_window:Grid_sim.Clock.time ->
  ?poll_interval:Grid_sim.Clock.time ->
  ?disk:Grid_sim.Disk.t ->
  ?crl_file:string ->
  name:string ->
  unit ->
  t
(** Defaults: 900 s [token_ttl] (the service default), 1 s [push_window],
    60 s [poll_interval], CRL file ["sts-crl"]. [Pull] requires [disk];
    raises [Invalid_argument] without one. Polling starts on the first
    {!install}/{!deliver}-independent {!start} call. *)

val name : t -> string
val mode : t -> mode

val propagation_window : t -> Grid_sim.Clock.time
(** The enforcement bound this mode promises: token TTL ([Short_ttl]),
    push bound ([Push]), or poll interval + slack ([Pull]). *)

val is_revoked : t -> jti:string -> subject:string -> bool
(** Whether this validator currently refuses the grant. Always [false]
    in [Short_ttl] mode — expiry is the enforcement there. *)

val deliver : t -> now:Grid_sim.Clock.time -> entry list -> unit
(** In-band receipt of a pushed revocation delta. *)

val start : t -> unit
(** Arm the [Pull] poll loop (no-op in other modes, idempotent). *)

val stop : t -> unit
(** Disarm the poll loop so the engine can drain. *)

val on_revocation : t -> (jti:string -> subject:string -> unit) -> unit
(** Called once per newly applied revocation, synchronously — the
    decision-cache flush hook. *)

val entries : t -> int
(** Resident revocation entries (jti + subject records). *)

val state_bytes : t -> int
(** Approximate resident bytes of revocation state — the footprint the
    stateful modes pay and [Short_ttl] does not. *)

val enforcement_latencies : t -> Grid_sim.Clock.time list
(** Simulated seconds from each revocation to this validator applying
    it, newest first. Empty in [Short_ttl] mode. *)

val deliveries : t -> int
val fetches : t -> int
