(** Structured audit log for security-relevant events. *)

type outcome =
  | Success
  | Failure of string

type kind =
  | Authentication
  | Authorization
  | Account_mapping
  | Job_submission
  | Job_management
  | Job_state
  | Recovery  (** crash/restart lifecycle of a component *)

val kind_to_string : kind -> string

val is_failure : outcome -> bool
(** The one failure predicate all failure accounting (here and in
    {!Reports}) is derived from. *)

type record = {
  at : Grid_sim.Clock.time;
  kind : kind;
  subject : Grid_gsi.Dn.t option;
  job_id : string option;
  outcome : outcome;
  detail : string;
  policy_epoch : int option;
      (** policy epoch the recorded action ran under, when known *)
  corr_id : string option;
      (** correlation id tying this entry to the wide-event chain *)
}

type t

val create : unit -> t

val log :
  t ->
  at:Grid_sim.Clock.time ->
  kind:kind ->
  ?subject:Grid_gsi.Dn.t ->
  ?job_id:string ->
  ?policy_epoch:int ->
  ?corr_id:string ->
  outcome:outcome ->
  string ->
  unit

val records : t -> record list
(** Chronological order. *)

val count : t -> int
(** O(1): a running total, not a list walk. *)

val failure_count : t -> int
(** O(1). *)

val by_kind : t -> kind -> record list
val by_subject : t -> Grid_gsi.Dn.t -> record list
val by_job : t -> string -> record list

val by_correlation : t -> string -> record list
(** Every entry stamped with the given correlation id — the audit-side
    view of one request's event chain. *)

val failures : t -> record list

val pp_record : record Fmt.t
val pp : t Fmt.t
