(** Structured audit log for security-relevant events. *)

type outcome =
  | Success
  | Failure of string

type kind =
  | Authentication
  | Authorization
  | Account_mapping
  | Job_submission
  | Job_management
  | Job_state
  | Recovery  (** crash/restart lifecycle of a component *)

val kind_to_string : kind -> string

type record = {
  at : Grid_sim.Clock.time;
  kind : kind;
  subject : Grid_gsi.Dn.t option;
  job_id : string option;
  outcome : outcome;
  detail : string;
}

type t

val create : unit -> t

val log :
  t ->
  at:Grid_sim.Clock.time ->
  kind:kind ->
  ?subject:Grid_gsi.Dn.t ->
  ?job_id:string ->
  outcome:outcome ->
  string ->
  unit

val records : t -> record list
(** Chronological order. *)

val count : t -> int
(** O(1): a running total, not a list walk. *)

val failure_count : t -> int
(** O(1). *)

val by_kind : t -> kind -> record list
val by_subject : t -> Grid_gsi.Dn.t -> record list
val by_job : t -> string -> record list
val failures : t -> record list

val pp_record : record Fmt.t
val pp : t Fmt.t
