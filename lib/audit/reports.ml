(* Accounting reports over the audit trail.

   Section 4.3 lists "security, audit, accounting" among the problems of
   shared accounts; the per-identity audit trail restores accountability,
   and these reports aggregate it: per-subject activity, denial reasons,
   and a per-kind breakdown — what a site administrator pulls after an
   incident or at the end of an allocation period. *)

type subject_summary = {
  subject : Grid_gsi.Dn.t;
  authentications : int;
  authn_failures : int;
  authorizations : int;
  authz_denials : int;
  submissions : int;
  submission_failures : int;
  management_actions : int;
}

let empty_summary subject =
  { subject;
    authentications = 0;
    authn_failures = 0;
    authorizations = 0;
    authz_denials = 0;
    submissions = 0;
    submission_failures = 0;
    management_actions = 0 }

let add_record (s : subject_summary) (r : Audit.record) =
  let failed = Audit.is_failure r.Audit.outcome in
  match r.Audit.kind with
  | Audit.Authentication ->
    { s with
      authentications = s.authentications + 1;
      authn_failures = s.authn_failures + (if failed then 1 else 0) }
  | Audit.Authorization ->
    { s with
      authorizations = s.authorizations + 1;
      authz_denials = s.authz_denials + (if failed then 1 else 0) }
  | Audit.Job_submission ->
    { s with
      submissions = s.submissions + 1;
      submission_failures = s.submission_failures + (if failed then 1 else 0) }
  | Audit.Job_management -> { s with management_actions = s.management_actions + 1 }
  | Audit.Account_mapping | Audit.Job_state | Audit.Recovery -> s

let by_subject (audit : Audit.t) : subject_summary list =
  let table : (string, subject_summary) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Audit.record) ->
      match r.Audit.subject with
      | None -> ()
      | Some subject ->
        let key = Grid_gsi.Dn.to_string subject in
        let existing =
          match Hashtbl.find_opt table key with
          | Some s -> s
          | None -> empty_summary subject
        in
        Hashtbl.replace table key (add_record existing r))
    (Audit.records audit);
  Hashtbl.fold (fun _ s acc -> s :: acc) table []
  |> List.sort (fun a b -> Grid_gsi.Dn.compare a.subject b.subject)

(* Denial reasons, most frequent first. *)
let denial_reasons (audit : Audit.t) : (string * int) list =
  let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Audit.record) ->
      match r.Audit.outcome with
      | Audit.Failure reason ->
        Hashtbl.replace table reason (1 + Option.value (Hashtbl.find_opt table reason) ~default:0)
      | Audit.Success -> ())
    (Audit.records audit);
  Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let kind_counts (audit : Audit.t) : (Audit.kind * int) list =
  List.map
    (fun kind -> (kind, List.length (Audit.by_kind audit kind)))
    [ Audit.Authentication; Audit.Authorization; Audit.Account_mapping;
      Audit.Job_submission; Audit.Job_management; Audit.Job_state; Audit.Recovery ]

let pp_subject_summary ppf s =
  Fmt.pf ppf "%-50s authn %d/%d  authz %d/%d  submit %d/%d  manage %d"
    (Grid_gsi.Dn.to_string s.subject)
    (s.authentications - s.authn_failures)
    s.authentications
    (s.authorizations - s.authz_denials)
    s.authorizations
    (s.submissions - s.submission_failures)
    s.submissions s.management_actions

let pp ppf audit =
  Fmt.pf ppf "@[<v>Per-subject activity (succeeded/total):@,";
  List.iter (fun s -> Fmt.pf ppf "  %a@," pp_subject_summary s) (by_subject audit);
  (match denial_reasons audit with
  | [] -> ()
  | reasons ->
    Fmt.pf ppf "Denial reasons:@,";
    List.iter (fun (reason, n) -> Fmt.pf ppf "  %4d  %s@," n reason) reasons);
  Fmt.pf ppf "Record counts:@,";
  List.iter
    (fun (kind, n) -> Fmt.pf ppf "  %-10s %d@," (Audit.kind_to_string kind) n)
    (kind_counts audit);
  Fmt.pf ppf "@]"
