(* Structured audit log.

   Every security-relevant event in the Gatekeeper and Job Manager is
   recorded: authentication outcomes, authorization decisions (with the
   deciding source), account mappings, job lifecycle transitions and
   management requests. The paper's Section 4.3 notes shared accounts
   "introduce many security, audit, accounting and other problems" — the
   audit trail is what lets per-identity accountability survive dynamic
   account reuse. *)

type outcome =
  | Success
  | Failure of string

type kind =
  | Authentication
  | Authorization
  | Account_mapping
  | Job_submission
  | Job_management
  | Job_state
  | Recovery

let kind_to_string = function
  | Authentication -> "authn"
  | Authorization -> "authz"
  | Account_mapping -> "mapping"
  | Job_submission -> "submit"
  | Job_management -> "manage"
  | Job_state -> "state"
  | Recovery -> "recovery"

(* The single failure predicate: every failure count in this module and
   in [Reports] derives from it, so "what counts as a failure" cannot
   drift between the log's running totals and the report aggregates. *)
let is_failure = function Failure _ -> true | Success -> false

type record = {
  at : Grid_sim.Clock.time;
  kind : kind;
  subject : Grid_gsi.Dn.t option;
  job_id : string option;
  outcome : outcome;
  detail : string;
  policy_epoch : int option;
      (* the policy epoch the recorded action ran under *)
  corr_id : string option;
      (* correlation id linking this entry to the wide-event chain *)
}

type t = {
  mutable records : record list;  (* reverse order *)
  (* Running totals: [count] and failure accounting are consulted on hot
     paths (per-job workload stats), so they must not walk the log. *)
  mutable total : int;
  mutable failure_total : int;
}

let create () = { records = []; total = 0; failure_total = 0 }

let log t ~at ~kind ?subject ?job_id ?policy_epoch ?corr_id ~outcome detail =
  t.records <-
    { at; kind; subject; job_id; outcome; detail; policy_epoch; corr_id } :: t.records;
  t.total <- t.total + 1;
  if is_failure outcome then t.failure_total <- t.failure_total + 1

let records t = List.rev t.records

let count t = t.total

let failure_count t = t.failure_total

let by_kind t kind = List.filter (fun r -> r.kind = kind) (records t)

let by_subject t dn =
  List.filter
    (fun r -> match r.subject with Some s -> Grid_gsi.Dn.equal s dn | None -> false)
    (records t)

let by_job t job_id =
  List.filter (fun r -> r.job_id = Some job_id) (records t)

let by_correlation t corr =
  List.filter (fun r -> r.corr_id = Some corr) (records t)

let failures t = List.filter (fun r -> is_failure r.outcome) (records t)

let pp_record ppf r =
  let outcome = match r.outcome with Success -> "ok" | Failure m -> "FAIL(" ^ m ^ ")" in
  Fmt.pf ppf "%8.3fs %-8s %-32s %-12s %-6s %s%s%s" r.at (kind_to_string r.kind)
    (match r.subject with Some s -> Grid_gsi.Dn.to_string s | None -> "-")
    (Option.value r.job_id ~default:"-")
    outcome r.detail
    (match r.policy_epoch with
    | Some e -> Printf.sprintf " [epoch %d]" e
    | None -> "")
    (match r.corr_id with Some c -> " [" ^ c ^ "]" | None -> "")

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_record) (records t)
