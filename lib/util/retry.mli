(** Retry policies with deadlines, exponential backoff with seeded jitter,
    and a small circuit breaker.

    All decisions are pure functions of an explicit clock ([~now]) and a
    caller-supplied {!Rng.t}, so retry sequences are fully deterministic
    and reproducible under the simulation engine. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  initial_backoff : float;  (** backoff after the first failure, seconds *)
  backoff_multiplier : float;  (** growth factor per failed attempt *)
  max_backoff : float;  (** cap on the un-jittered backoff, seconds *)
  jitter : float;  (** relative jitter in [0, 1]; 0.2 = +/-20% *)
}

val default : policy
(** 4 attempts, 50ms initial backoff, x2 growth capped at 1s, 20% jitter. *)

val policy :
  ?max_attempts:int ->
  ?initial_backoff:float ->
  ?backoff_multiplier:float ->
  ?max_backoff:float ->
  ?jitter:float ->
  unit ->
  policy
(** Build a policy, validating ranges. Raises [Invalid_argument] on
    nonsensical values. *)

val backoff : policy -> rng:Rng.t -> attempt:int -> float
(** [backoff p ~rng ~attempt] is the jittered delay to wait after the
    [attempt]-th failure (1-based). Raises [Invalid_argument] if
    [attempt < 1]. *)

type verdict =
  | Retry_after of float  (** wait this many seconds, then try again *)
  | Give_up of string  (** stop retrying; human-readable reason *)

val next :
  policy ->
  rng:Rng.t ->
  now:float ->
  deadline:float option ->
  attempt:int ->
  verdict
(** [next p ~rng ~now ~deadline ~attempt] decides what to do after the
    [attempt]-th failure at time [now]. Gives up when attempts are
    exhausted or when the backed-off retry would start at or past the
    deadline. *)

(** A consecutive-failure circuit breaker with a time-based half-open
    probe. The [Open -> Half_open] transition happens lazily when any
    operation observes that the cooldown has elapsed. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  val state_to_string : state -> string

  type t

  val create :
    ?failure_threshold:int ->
    ?cooldown:float ->
    ?on_transition:(now:float -> state -> state -> unit) ->
    unit ->
    t
  (** Defaults: open after 3 consecutive failures, 30s cooldown before a
      half-open probe is allowed. [on_transition] fires on every state
      change with the old and new state. *)

  val state : t -> now:float -> state

  val allow : t -> now:float -> bool
  (** Whether a request may proceed at [now]. [false] only while Open;
      a Half_open breaker admits the probe request. *)

  val success : t -> now:float -> unit
  (** Record a successful call: resets the failure count, and closes the
      breaker if it was half-open. *)

  val failure : t -> now:float -> unit
  (** Record a failed call: trips the breaker at the threshold, and sends
      a failed half-open probe straight back to Open with a fresh
      cooldown. *)
end
