(** Injective flat wire encoding for lists of arbitrary byte strings.

    Joining fields with a separator character is not injective once a
    field can contain that character — a capability whose holder DN
    carries an embedded newline must not decode as a different
    capability. Each part is length-prefixed ([<len>.<bytes>]), so the
    encoding is unambiguous whatever the bytes are, and
    [decode (encode parts) = Some parts] for every part list. The
    decision-cache key builder uses the same scheme; the QCheck
    round-trip suites in [test_callout] and [test_cas] pin both. *)

val add_part : Buffer.t -> string -> unit
(** Append one length-prefixed part to a buffer. *)

val encode : string list -> string
(** Concatenated length-prefixed parts. Injective: distinct part lists
    (including lists differing only in how bytes split across parts)
    encode to distinct strings. *)

val decode : string -> string list option
(** Parse a string produced by {!encode} back into its parts; [None] on
    any malformed or trailing input. *)
