(* Retry policies and a circuit breaker.

   Pure decision logic over an explicit clock: callers supply [now], draw
   jitter from their own seeded [Rng.t], and schedule the returned backoff
   themselves (on the simulation engine, in our case). Keeping time and
   randomness external makes every retry sequence reproducible — the same
   property the latency model already has. *)

type policy = {
  max_attempts : int;
  initial_backoff : float;
  backoff_multiplier : float;
  max_backoff : float;
  jitter : float;
}

let default =
  { max_attempts = 4;
    initial_backoff = 0.05;
    backoff_multiplier = 2.0;
    max_backoff = 1.0;
    jitter = 0.2 }

let policy ?(max_attempts = default.max_attempts)
    ?(initial_backoff = default.initial_backoff)
    ?(backoff_multiplier = default.backoff_multiplier)
    ?(max_backoff = default.max_backoff) ?(jitter = default.jitter) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if initial_backoff < 0.0 || max_backoff < 0.0 then
    invalid_arg "Retry.policy: backoffs must be non-negative";
  if jitter < 0.0 || jitter > 1.0 then invalid_arg "Retry.policy: jitter must be in [0, 1]";
  { max_attempts; initial_backoff; backoff_multiplier; max_backoff; jitter }

(* Backoff before attempt [attempt + 1], i.e. after [attempt] failures
   (1-based). Exponential growth capped at [max_backoff], then spread
   uniformly over [base*(1-jitter), base*(1+jitter)) from the caller's
   stream. *)
let backoff p ~rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempt is 1-based";
  let base =
    Float.min p.max_backoff
      (p.initial_backoff *. (p.backoff_multiplier ** float_of_int (attempt - 1)))
  in
  let spread = base *. p.jitter in
  if spread <= 0.0 then base else base -. spread +. Rng.float rng (2.0 *. spread)

type verdict =
  | Retry_after of float
  | Give_up of string

(* After the [attempt]-th failure at time [now]: retry, or give up because
   attempts are exhausted or the backoff would overshoot the deadline. *)
let next p ~rng ~now ~deadline ~attempt =
  if attempt >= p.max_attempts then
    Give_up (Printf.sprintf "attempts exhausted (%d)" attempt)
  else begin
    let b = backoff p ~rng ~attempt in
    match deadline with
    | Some d when now +. b >= d ->
      Give_up (Printf.sprintf "deadline reached after %d attempts" attempt)
    | Some _ | None -> Retry_after b
  end

module Breaker = struct
  type state =
    | Closed
    | Open
    | Half_open

  let state_to_string = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  type t = {
    failure_threshold : int;
    cooldown : float;
    on_transition : now:float -> state -> state -> unit;
    mutable current : state;
    mutable consecutive_failures : int;
    mutable opened_at : float;
  }

  let create ?(failure_threshold = 3) ?(cooldown = 30.0)
      ?(on_transition = fun ~now:_ _ _ -> ()) () =
    if failure_threshold < 1 then
      invalid_arg "Breaker.create: failure_threshold must be >= 1";
    if cooldown < 0.0 then invalid_arg "Breaker.create: cooldown must be non-negative";
    { failure_threshold; cooldown; on_transition; current = Closed;
      consecutive_failures = 0; opened_at = neg_infinity }

  let transition t ~now target =
    if t.current <> target then begin
      let from = t.current in
      t.current <- target;
      t.on_transition ~now from target
    end

  (* The Open -> Half_open transition is time-driven; compute it lazily on
     every query so no timer needs scheduling. *)
  let refresh t ~now =
    if t.current = Open && now >= t.opened_at +. t.cooldown then
      transition t ~now Half_open

  let state t ~now =
    refresh t ~now;
    t.current

  let allow t ~now =
    refresh t ~now;
    t.current <> Open

  let success t ~now =
    refresh t ~now;
    t.consecutive_failures <- 0;
    if t.current = Half_open then transition t ~now Closed

  let failure t ~now =
    refresh t ~now;
    match t.current with
    | Half_open ->
      (* The probe failed: back to Open for a fresh cooldown. *)
      t.opened_at <- now;
      transition t ~now Open
    | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.failure_threshold then begin
        t.opened_at <- now;
        transition t ~now Open
      end
    | Open -> ()
end
