(* Length-prefixed part encoding: [<len>.<bytes>] per part. *)

let add_part buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf '.';
  Buffer.add_string buf s

let encode parts =
  let buf = Buffer.create 64 in
  List.iter (add_part buf) parts;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let rec go acc i =
    if i = n then Some (List.rev acc)
    else begin
      (* Parse the decimal length up to the '.' delimiter. A leading
         zero is only legal for the empty part ("0."), keeping the
         encoding canonical (one string per part list). *)
      let rec length_end j = if j < n && s.[j] <> '.' then length_end (j + 1) else j in
      let dot = length_end i in
      if dot >= n || dot = i || (s.[i] = '0' && dot > i + 1) then None
      else
        match int_of_string_opt (String.sub s i (dot - i)) with
        | None -> None
        | Some len ->
          if len < 0 || dot + 1 + len > n then None
          else go (String.sub s (dot + 1) len :: acc) (dot + 1 + len)
    end
  in
  go [] 0
