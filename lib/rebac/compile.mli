(** Compiling Figure-3-class policies ({!Grid_policy.Types.policy}) into
    relation tuples plus rewrite rules, and the graph-backed decision
    procedure over them.

    Subject applicability (DN-prefix match) becomes graph reachability
    over a trie of pattern prefixes; residual clause evaluation reuses
    the exported {!Grid_policy.Eval} primitives, so decisions — and
    reasons — are identical to {!Grid_policy.Compile.eval}, the property
    the [test_rebac] differential suite pins. *)

type t
(** A compiled plan: statement objects, trie tuples, rewrite rules. *)

val of_sources : Grid_policy.Combine.source list -> t
val of_policy : ?name:string -> Grid_policy.Types.t -> t
(** [name] defaults to ["policy"]. *)

val tuples : t -> Tuple.t list
val tuple_count : t -> int

val install : t -> Store.t -> Zookie.t
(** Set the plan's rewrite rules and write its tuples as one batch. *)

val load : ?epoch:int -> t -> Store.t
(** A fresh store with the plan installed. *)

val context_for : t -> Grid_gsi.Dn.t -> Tuple.t list
(** The request-scoped contextual tuple grafting a requester into the
    pattern trie (empty when the plan has no statements). *)

val decide :
  ?obs:Grid_obs.Obs.t ->
  ?budget:int ->
  ?consistency:Store.consistency ->
  t ->
  Store.t ->
  Grid_policy.Types.request ->
  (Grid_policy.Combine.combined_decision, Store.check_error) result
(** Conjunctive multi-source decision, mirroring
    {!Grid_policy.Combine.evaluate_compiled}: first denial wins, an
    empty source list fails closed; [Error] carries the graph-side
    failure (depth budget, future token, expired snapshot) — an
    authorization-system condition, not a policy answer. *)

(** Namespaces and relations of the encoding (exposed for tests and for
    hand-built tuples riding alongside compiled ones). *)

val group_ns : string
val stmt_ns : string
val member_rel : string
val child_rel : string
val subject_rel : string
val applicable_rel : string

val group_obj : Grid_gsi.Dn.rdn list -> Tuple.obj
(** The trie node for a pattern prefix ([[]] is the root). *)
