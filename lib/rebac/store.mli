(** Multi-versioned relation-tuple store with userset-rewrite rules.

    Every write or delete bumps a revision counter and returns the new
    head {!Zookie.t}; tuples record the revision interval over which
    they are visible, so {!check} can answer against the head, any
    same-epoch snapshot, or "at least as fresh as this token". *)

type t

type rewrite =
  | This  (** the relation's own stored (and contextual) tuples *)
  | Computed_userset of string
      (** membership of another relation on the same object *)
  | Tuple_to_userset of {
      tupleset : string;
      computed : string;
    }
      (** walk [tupleset] tuples to other objects and test [computed]
          there — group nesting, folder inheritance *)
  | Union of rewrite list

val create : ?epoch:int -> unit -> t
(** An empty store at revision 0. [epoch] (default 0) should come from
    {!Grid_policy.Compile.fresh_epoch} when the store backs a PEP. *)

val epoch : t -> int

val set_epoch : t -> int -> unit
(** Raises [Invalid_argument] if the epoch would decrease. *)

val revision : t -> int

val head : t -> Zookie.t
(** The token naming the current snapshot. *)

val set_rule : t -> namespace:string -> relation:string -> rewrite -> unit
(** Relations with no explicit rule behave as {!This}. *)

val rule : t -> namespace:string -> relation:string -> rewrite

val write : t -> Tuple.t -> Zookie.t
(** Idempotent on content, but always advances the revision. *)

val write_batch : t -> Tuple.t list -> Zookie.t
(** One revision for the whole batch. *)

val delete : t -> Tuple.t -> Zookie.t
(** Ends the visibility of matching live tuples; earlier snapshots still
    see them. *)

val tuple_count : t -> int
(** Live tuples at head. *)

type consistency =
  | Latest  (** head revision *)
  | At_least of Zookie.t
      (** any snapshot no older than the token — with a single store
          that is the head, but a token newer than the head (e.g. from a
          store this replica has not caught up with) is refused *)
  | Snapshot of Zookie.t  (** exactly the token's same-epoch revision *)

type check_error =
  | Depth_exceeded of int  (** graph deeper than the budget: indeterminate *)
  | Future_token of {
      token : Zookie.t;
      head : Zookie.t;
    }
  | Snapshot_gone of {
      token : Zookie.t;
      epoch : int;
    }  (** the token's epoch predates the current store *)

val check_error_to_string : check_error -> string

val check :
  ?budget:int ->
  ?context:Tuple.t list ->
  ?consistency:consistency ->
  t ->
  obj:Tuple.obj ->
  relation:string ->
  user:string ->
  (bool, check_error) result
(** Is [user] a member of [obj#relation] at the requested snapshot?
    Breadth-first userset expansion with a visited set (cycles
    terminate) and a depth budget (default {!default_budget});
    exceeding the budget is an error, not a deny. [context] supplies
    request-scoped tuples visible at every snapshot but never stored. *)

val default_budget : int
