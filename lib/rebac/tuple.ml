(* Relation tuples, the Zanzibar data model (Pang et al., ATC 2019)
   transplanted onto the paper's vocabulary: an [object] is a namespaced
   id such as [group:physics] or [jobtag:jt-42], a [relation] names an
   edge class on that namespace ([member], [manager], ...), and a
   subject is either a concrete user (a grid DN) or a *userset* — every
   user holding some relation on some object, written
   [group:physics#member]. The canonical text form is

     object#relation@subject

   e.g. [group:physics#member@user:/DC=org/CN=alice] and
   [jobtag:jt-42#manager@group:physics#member]. *)

type obj = {
  namespace : string;
  id : string;
}

type userset = {
  uobj : obj;
  urelation : string;
}

type subject =
  | User of string  (* a concrete principal; for PEPs, the DN string *)
  | Userset of userset

type t = {
  obj : obj;
  relation : string;
  subject : subject;
}

let obj ~namespace ~id =
  if namespace = "" || id = "" then invalid_arg "Tuple.obj: empty namespace or id";
  if String.contains namespace ':' || String.contains namespace '#' then
    invalid_arg "Tuple.obj: namespace must not contain ':' or '#'";
  if String.contains id '#' || String.contains id '@' then
    invalid_arg "Tuple.obj: id must not contain '#' or '@'";
  { namespace; id }

let obj_to_string o = o.namespace ^ ":" ^ o.id

(* The first ':' separates namespace from id, so ids may themselves
   contain ':' (DNs with odd values survive). *)
let obj_of_string s =
  match String.index_opt s ':' with
  | None | Some 0 -> None
  | Some i ->
    let namespace = String.sub s 0 i in
    let id = String.sub s (i + 1) (String.length s - i - 1) in
    if id = "" || String.contains namespace '#' then None else Some { namespace; id }

let obj_equal a b = a.namespace = b.namespace && a.id = b.id

let userset uobj urelation = { uobj; urelation }

let subject_to_string = function
  | User u -> "user:" ^ u
  | Userset { uobj; urelation } -> obj_to_string uobj ^ "#" ^ urelation

let subject_of_string s =
  match String.index_opt s '#' with
  | Some i ->
    let rel = String.sub s (i + 1) (String.length s - i - 1) in
    if rel = "" then None
    else
      Option.map
        (fun uobj -> Userset { uobj; urelation = rel })
        (obj_of_string (String.sub s 0 i))
  | None ->
    let prefix = "user:" in
    let plen = String.length prefix in
    if String.length s > plen && String.sub s 0 plen = prefix then
      Some (User (String.sub s plen (String.length s - plen)))
    else None

let subject_equal a b =
  match (a, b) with
  | User x, User y -> String.equal x y
  | Userset x, Userset y -> obj_equal x.uobj y.uobj && x.urelation = y.urelation
  | User _, Userset _ | Userset _, User _ -> false

let make obj ~relation subject =
  if relation = "" || String.contains relation '@' || String.contains relation '#' then
    invalid_arg "Tuple.make: bad relation";
  { obj; relation; subject }

let to_string t =
  Printf.sprintf "%s#%s@%s" (obj_to_string t.obj) t.relation
    (subject_to_string t.subject)

(* [object#relation@subject]: split on the first '#' (object ids exclude
   '#') and then the first '@' (relations exclude '@'); the subject keeps
   any later '#' for its own userset form. *)
let of_string s =
  match String.index_opt s '#' with
  | None -> Error (Printf.sprintf "tuple %S: missing '#'" s)
  | Some hash -> begin
    match obj_of_string (String.sub s 0 hash) with
    | None -> Error (Printf.sprintf "tuple %S: bad object" s)
    | Some obj -> begin
      let rest = String.sub s (hash + 1) (String.length s - hash - 1) in
      match String.index_opt rest '@' with
      | None | Some 0 -> Error (Printf.sprintf "tuple %S: missing relation@subject" s)
      | Some at -> begin
        let relation = String.sub rest 0 at in
        match subject_of_string (String.sub rest (at + 1) (String.length rest - at - 1)) with
        | None -> Error (Printf.sprintf "tuple %S: bad subject" s)
        | Some subject -> (
          (* [make] re-validates the relation: a '#' smuggled into it
             (e.g. "obj##rel@s") must not round-trip. *)
          match make obj ~relation subject with
          | t -> Ok t
          | exception Invalid_argument m -> Error (Printf.sprintf "tuple %S: %s" s m))
      end
    end
  end

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

let equal a b =
  obj_equal a.obj b.obj && a.relation = b.relation && subject_equal a.subject b.subject

let pp ppf t = Fmt.string ppf (to_string t)
