(* Consistency tokens ("zookies", after Zanzibar's cookie-like tokens).

   A zookie names a snapshot of the authorization state as a pair: the
   *policy epoch* the tuple store was compiled under (the same
   process-global counter every compiled PEP draws from, so tokens stay
   comparable with policy reloads) and the store *revision* within that
   epoch (bumped by every tuple write or delete). Tokens order
   lexicographically on (epoch, revision); a reload compiles a fresh
   store under a strictly larger epoch, so tokens remain monotonic
   across policy churn.

   The textual form carries a short content digest so a corrupted or
   hand-edited token is rejected instead of silently naming the wrong
   snapshot. The digest is integrity, not secrecy: tokens are not
   capabilities. *)

type t = {
  epoch : int;
  revision : int;
}

let make ~epoch ~revision =
  if epoch < 0 || revision < 0 then invalid_arg "Zookie.make: negative component";
  { epoch; revision }

let epoch t = t.epoch
let revision t = t.revision

let compare a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> Int.compare a.revision b.revision
  | c -> c

let equal a b = compare a b = 0
let newer_than a b = compare a b > 0

(* FNV-1a, truncated to 8 hex digits: cheap, stable, dependency-free. *)
let digest_of ~epoch ~revision =
  let fnv_prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let body = Printf.sprintf "zookie:%d:%d" epoch revision in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    body;
  Printf.sprintf "%08Lx" (Int64.logand !h 0xffffffffL)

let to_string t =
  Printf.sprintf "zk:%d:%d:%s" t.epoch t.revision (digest_of ~epoch:t.epoch ~revision:t.revision)

let of_string s =
  match String.split_on_char ':' s with
  | [ "zk"; e; r; digest ] -> begin
    match (int_of_string_opt e, int_of_string_opt r) with
    | Some epoch, Some revision when epoch >= 0 && revision >= 0 ->
      if String.equal digest (digest_of ~epoch ~revision) then Ok { epoch; revision }
      else Error (Printf.sprintf "zookie %S: digest mismatch" s)
    | _ -> Error (Printf.sprintf "zookie %S: bad components" s)
  end
  | _ -> Error (Printf.sprintf "zookie %S: expected zk:<epoch>:<revision>:<digest>" s)

let pp ppf t = Fmt.string ppf (to_string t)
