(** Relation tuples: the [object#relation@subject] triples of the
    Zanzibar data model, e.g.
    [group:physics#member@user:/DC=org/CN=alice] and
    [jobtag:jt-42#manager@group:physics#member]. *)

type obj = private {
  namespace : string;
  id : string;
}

type userset = {
  uobj : obj;
  urelation : string;
}

type subject =
  | User of string  (** a concrete principal; for PEPs, the DN string *)
  | Userset of userset
      (** every user holding [urelation] on [uobj] — group indirection *)

type t = private {
  obj : obj;
  relation : string;
  subject : subject;
}

val obj : namespace:string -> id:string -> obj
(** Raises [Invalid_argument] on empty parts or separator characters
    ([':'] / ['#'] in the namespace, ['#'] / ['@'] in the id). *)

val obj_to_string : obj -> string
val obj_of_string : string -> obj option
val obj_equal : obj -> obj -> bool

val userset : obj -> string -> userset

val subject_to_string : subject -> string
val subject_of_string : string -> subject option
val subject_equal : subject -> subject -> bool

val make : obj -> relation:string -> subject -> t
(** Raises [Invalid_argument] when [relation] is empty or contains
    ['@'] / ['#']. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val of_string_exn : string -> t
(** Raises [Invalid_argument] where {!of_string} returns [Error]. *)

val equal : t -> t -> bool
val pp : t Fmt.t
