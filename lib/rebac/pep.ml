(* The relationship-based policy evaluation point.

   Same shape as [File_pep.Compiled]: built from named policy sources,
   reloadable (a reload recompiles the tuple graph under a strictly
   larger policy epoch, drawn from the same process-global counter as
   every compiled PEP), and announced on the event bus with the same
   ["policy.epoch"] event the safety monitor dates its staleness window
   from. The extra dimension is the store *revision*: ad-hoc tuple
   writes through [store] advance it without an epoch change, and
   decision caches fold [revision] into their keys next to the epoch.

   Graph-side failures (depth budget exceeded, future token, expired
   snapshot) surface as [System_error] — the authorization system could
   not answer — never as [Denied]; default-deny is a policy stance, not
   an error-masking one. *)

type t = {
  obs : Grid_obs.Obs.t option;
  mutable plan : Compile.t;
  mutable store : Store.t;
  mutable nsources : int;
}

(* Registry coordinates, alongside libauthz_file / Akenti / CAS. *)
let library = "librebac_authz.so"
let symbol = "rebac_authz_callout"

let note_epoch ?(kind = "reload") t =
  match t.obs with
  | None -> ()
  | Some obs ->
    Grid_obs.Obs.emit obs ~layer:"pep" "policy.epoch"
      [ ("epoch", string_of_int (Store.epoch t.store));
        ("sources", string_of_int t.nsources);
        ("cause", kind) ]

let create ?obs (sources : Grid_policy.Combine.source list) =
  let plan = Compile.of_sources sources in
  let store = Compile.load ~epoch:(Grid_policy.Compile.fresh_epoch ()) plan in
  let t = { obs; plan; store; nsources = List.length sources } in
  note_epoch ~kind:"create" t;
  t

(* The new store gets a fresh (strictly larger) epoch, so zookies issued
   before the reload are older than every post-reload token and caches
   keyed on (epoch, revision) cannot serve stale decisions. *)
let reload t sources =
  let plan = Compile.of_sources sources in
  t.plan <- plan;
  t.store <- Compile.load ~epoch:(Grid_policy.Compile.fresh_epoch ()) plan;
  t.nsources <- List.length sources;
  note_epoch t

let store t = t.store
let epoch t = Store.epoch t.store
let revision t = Store.revision t.store
let head t = Store.head t.store

let decision_to_callout = function
  | Grid_policy.Combine.Permit -> Ok ()
  | Grid_policy.Combine.Deny { source; reason } ->
    Error
      (Grid_callout.Callout.Denied
         (Printf.sprintf "%s: %s" source (Grid_policy.Eval.reason_to_string reason)))

let callout_with ?budget ?consistency t : Grid_callout.Callout.t =
 fun query ->
  let request = Grid_callout.Callout.to_policy_request query in
  match Compile.decide ?obs:t.obs ?budget ?consistency t.plan t.store request with
  | Ok decision -> decision_to_callout decision
  | Error e ->
    Error
      (Grid_callout.Callout.System_error ("rebac: " ^ Store.check_error_to_string e))

(* The store is the single replica, so [Latest] already satisfies every
   issued token; a caller pinning [At_least z] or [Snapshot z] gets the
   token-respecting variants. *)
let callout t = callout_with t

let of_sources ?obs sources = callout (create ?obs sources)
