(* The relationship-based policy evaluation point.

   Same shape as [File_pep.Compiled]: built from named policy sources,
   reloadable (a reload recompiles the tuple graph under a strictly
   larger policy epoch, drawn from the same process-global counter as
   every compiled PEP), and announced on the event bus with the same
   ["policy.epoch"] event the safety monitor dates its staleness window
   from. The extra dimension is the store *revision*: ad-hoc tuple
   writes through [store] advance it without an epoch change, and
   decision caches fold [revision] into their keys next to the epoch.

   Graph-side failures (depth budget exceeded, future token, expired
   snapshot) surface as [System_error] — the authorization system could
   not answer — never as [Denied]; default-deny is a policy stance, not
   an error-masking one. *)

type t = {
  obs : Grid_obs.Obs.t option;
  mutable plan : Compile.t;
  mutable store : Store.t;
  mutable nsources : int;
  (* Denial interning (same discipline as [File_pep]): messages for the
     few distinct (source, reason) denials are rendered once and the
     decision values shared; capped, and reset on reload because a new
     policy makes old denial shapes unreachable. *)
  interned : (Grid_policy.Combine.combined_decision, Grid_callout.Callout.decision) Hashtbl.t;
}

(* Registry coordinates, alongside libauthz_file / Akenti / CAS. *)
let library = "librebac_authz.so"
let symbol = "rebac_authz_callout"

let note_epoch ?(kind = "reload") t =
  match t.obs with
  | None -> ()
  | Some obs ->
    Grid_obs.Obs.emit obs ~layer:"pep" "policy.epoch"
      [ ("epoch", string_of_int (Store.epoch t.store));
        ("sources", string_of_int t.nsources);
        ("cause", kind) ]

let create ?obs (sources : Grid_policy.Combine.source list) =
  let plan = Compile.of_sources sources in
  let store = Compile.load ~epoch:(Grid_policy.Compile.fresh_epoch ()) plan in
  let t =
    { obs; plan; store; nsources = List.length sources; interned = Hashtbl.create 16 }
  in
  note_epoch ~kind:"create" t;
  t

(* The new store gets a fresh (strictly larger) epoch, so zookies issued
   before the reload are older than every post-reload token and caches
   keyed on (epoch, revision) cannot serve stale decisions. *)
let reload t sources =
  let plan = Compile.of_sources sources in
  t.plan <- plan;
  t.store <- Compile.load ~epoch:(Grid_policy.Compile.fresh_epoch ()) plan;
  t.nsources <- List.length sources;
  Hashtbl.reset t.interned;
  note_epoch t

let store t = t.store
let epoch t = Store.epoch t.store
let revision t = Store.revision t.store
let head t = Store.head t.store

let decision_to_callout = function
  | Grid_policy.Combine.Permit -> Grid_callout.Callout.permitted
  | Grid_policy.Combine.Deny { source; reason } ->
    Error
      (Grid_callout.Callout.Denied
         (Printf.sprintf "%s: %s" source (Grid_policy.Eval.reason_to_string reason)))

let intern_cap = 1024

let intern_decision t = function
  | Grid_policy.Combine.Permit -> Grid_callout.Callout.permitted
  | Grid_policy.Combine.Deny _ as d -> begin
    match Hashtbl.find_opt t.interned d with
    | Some decision -> decision
    | None ->
      let decision = decision_to_callout d in
      if Hashtbl.length t.interned < intern_cap then Hashtbl.add t.interned d decision;
      decision
  end

let decide_request ?budget ?consistency t request =
  match Compile.decide ?obs:t.obs ?budget ?consistency t.plan t.store request with
  | Ok decision -> intern_decision t decision
  | Error e ->
    Error
      (Grid_callout.Callout.System_error ("rebac: " ^ Store.check_error_to_string e))

let callout_with ?budget ?consistency t : Grid_callout.Callout.t =
 fun query ->
  decide_request ?budget ?consistency t (Grid_callout.Callout.to_policy_request query)

(* The store is the single replica, so [Latest] already satisfies every
   issued token; a caller pinning [At_least z] or [Snapshot z] gets the
   token-respecting variants. *)
let callout t = callout_with t

(* Native batch lane: graph expansion cannot share work across distinct
   requests the way the compiled RSL index can, but management ticks
   repeat the same (subject, action, jobowner, jobtag) question across a
   job population — requests are plain data, so structurally equal
   requests are decided once (one graph expansion per distinct question,
   all within one snapshot) and the shared decision value scattered to
   every duplicate slot, in request order. *)
let batch_with ?budget ?consistency t : Grid_callout.Callout.Batch.t =
  let single = callout_with ?budget ?consistency t in
  let many qs =
    let n = Array.length qs in
    let results = Array.make n Grid_callout.Callout.permitted in
    let seen : (Grid_policy.Types.request, Grid_callout.Callout.decision) Hashtbl.t =
      Hashtbl.create (min n 64)
    in
    for i = 0 to n - 1 do
      let request = Grid_callout.Callout.to_policy_request qs.(i) in
      match Hashtbl.find_opt seen request with
      | Some decision -> results.(i) <- decision
      | None ->
        let decision = decide_request ?budget ?consistency t request in
        Hashtbl.add seen request decision;
        results.(i) <- decision
    done;
    results
  in
  Grid_callout.Callout.Batch.make ~single ~many

let batch t = batch_with t

let of_sources ?obs sources = callout (create ?obs sources)
