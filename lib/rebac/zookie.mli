(** Zanzibar-style consistency tokens.

    A zookie names a snapshot of the relation-tuple store as a
    [(policy epoch, store revision)] pair, ordered lexicographically.
    The epoch is drawn from the same process-global counter as compiled
    policy epochs ({!Grid_policy.Compile.fresh_epoch}), so a policy
    reload — which rebuilds the store under a fresh epoch — always
    yields strictly newer tokens; decision caches fold the revision into
    their keys the same way they fold the epoch. *)

type t

val make : epoch:int -> revision:int -> t
(** Raises [Invalid_argument] on negative components. *)

val epoch : t -> int
val revision : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val newer_than : t -> t -> bool
(** [newer_than a b] is [compare a b > 0]. *)

val to_string : t -> string
(** [zk:<epoch>:<revision>:<digest>]; the digest makes corrupted tokens
    detectable ({!of_string} rejects them). *)

val of_string : string -> (t, string) result
val pp : t Fmt.t
