(** The relationship-based PEP behind the GRAM callout API — the ReBAC
    sibling of {!Grid_callout.File_pep.Compiled}.

    Policies compile to a tuple graph under a fresh policy epoch;
    [reload] recompiles under a strictly larger one and emits the same
    ["policy.epoch"] event as the flat-file PEP. Graph-side failures
    (depth budget, token from the future, expired snapshot) answer
    [System_error], never [Denied]. *)

type t

val library : string
(** ["librebac_authz.so"] — the {!Grid_callout.Registry} library name. *)

val symbol : string
(** ["rebac_authz_callout"]. *)

val create : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> t
val reload : t -> Grid_policy.Combine.source list -> unit

val store : t -> Store.t
(** The live tuple store: ad-hoc relationship writes ride alongside the
    compiled plan and advance the revision (not the epoch). *)

val epoch : t -> int
val revision : t -> int

val head : t -> Zookie.t
(** The consistency token naming the current snapshot. *)

val callout : t -> Grid_callout.Callout.t
(** Decisions at the head snapshot. *)

val callout_with :
  ?budget:int -> ?consistency:Store.consistency -> t -> Grid_callout.Callout.t
(** [consistency] pins decisions to a caller token ([At_least] /
    [Snapshot]); [budget] overrides the expansion depth budget. *)

val batch : t -> Grid_callout.Callout.Batch.t
(** Native batch lane at the head snapshot: structurally equal requests
    in a batch share one graph expansion (one decision per distinct
    question), answers in request order — element-wise equal to mapping
    {!callout}. *)

val batch_with :
  ?budget:int -> ?consistency:Store.consistency -> t -> Grid_callout.Callout.Batch.t
(** {!batch} under the same pinning knobs as {!callout_with}. *)

val of_sources : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> Grid_callout.Callout.t
(** [callout (create ?obs sources)]. *)
