(* The relation-tuple store with userset-rewrite rules and snapshot
   reads.

   Writes are multi-versioned: every write or delete bumps a revision
   counter, and each tuple records the revision interval over which it
   is visible ([added_at, removed_at)). A check therefore evaluates
   against a *snapshot* — by default the head revision, but a caller
   holding a zookie can pin an older same-epoch snapshot and get exactly
   the answer that snapshot gave, regardless of later writes. That is
   the zookie-monotonicity property the QCheck suite pins: a decision at
   revision r never uses tuples newer than r.

   Membership questions are answered by iterative graph expansion over
   the userset-rewrite rules of Zanzibar's namespace configs:

     - [This]: the stored (and contextual) tuples of the relation;
     - [Computed_userset r]: membership of relation [r] on the same
       object (e.g. every [manager] is a [member]);
     - [Tuple_to_userset]: walk the [tupleset] relation to other objects
       and test [computed] there (e.g. a group inherits the members of
       the groups its [child] tuples name);
     - [Union]: any branch suffices.

   Expansion is breadth-first with a visited set — cyclic graphs
   terminate unconditionally — and a depth budget: a graph deeper than
   the budget yields [Error Depth_exceeded] rather than a silent
   default-deny, because "too deep to know" is an authorization-system
   condition, not a policy answer (the PEP maps it to [System_error],
   fail closed). *)

type rewrite =
  | This
  | Computed_userset of string
  | Tuple_to_userset of {
      tupleset : string;
      computed : string;
    }
  | Union of rewrite list

type record = {
  tuple : Tuple.t;
  added_at : int;
  mutable removed_at : int;  (* max_int while live *)
}

type t = {
  mutable epoch : int;
  mutable revision : int;
  (* (namespace, id, relation) -> records, newest first *)
  index : (string, record list ref) Hashtbl.t;
  (* (namespace, relation) -> rewrite; missing means This *)
  rules : (string, rewrite) Hashtbl.t;
}

let default_budget = 64

let create ?(epoch = 0) () =
  if epoch < 0 then invalid_arg "Store.create: negative epoch";
  { epoch; revision = 0; index = Hashtbl.create 64; rules = Hashtbl.create 16 }

let epoch t = t.epoch

let set_epoch t epoch =
  if epoch < t.epoch then invalid_arg "Store.set_epoch: epoch must not decrease";
  t.epoch <- epoch

let revision t = t.revision
let head t = Zookie.make ~epoch:t.epoch ~revision:t.revision

let index_key (o : Tuple.obj) relation =
  Printf.sprintf "%d.%s%d.%s%d.%s" (String.length o.Tuple.namespace)
    o.Tuple.namespace (String.length o.Tuple.id) o.Tuple.id (String.length relation)
    relation

let rule_key namespace relation =
  Printf.sprintf "%d.%s%d.%s" (String.length namespace) namespace
    (String.length relation) relation

let set_rule t ~namespace ~relation rewrite =
  Hashtbl.replace t.rules (rule_key namespace relation) rewrite

let rule t ~namespace ~relation =
  Option.value ~default:This (Hashtbl.find_opt t.rules (rule_key namespace relation))

let records_for t (o : Tuple.obj) relation =
  match Hashtbl.find_opt t.index (index_key o relation) with
  | Some records -> !records
  | None -> []

let live_exists t (tuple : Tuple.t) =
  List.exists
    (fun r -> r.removed_at = max_int && Tuple.equal r.tuple tuple)
    (records_for t tuple.Tuple.obj tuple.Tuple.relation)

(* A write is idempotent on content but still advances the revision: the
   returned zookie must name a snapshot at least as fresh as the write
   it acknowledges, duplicate or not. *)
let add_record t (tuple : Tuple.t) =
  if not (live_exists t tuple) then begin
    let key = index_key tuple.Tuple.obj tuple.Tuple.relation in
    let cell =
      match Hashtbl.find_opt t.index key with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.add t.index key cell;
        cell
    in
    cell := { tuple; added_at = t.revision; removed_at = max_int } :: !cell
  end

let write t tuple =
  t.revision <- t.revision + 1;
  add_record t tuple;
  head t

let write_batch t tuples =
  t.revision <- t.revision + 1;
  List.iter (add_record t) tuples;
  head t

let delete t (tuple : Tuple.t) =
  t.revision <- t.revision + 1;
  List.iter
    (fun r ->
      if r.removed_at = max_int && Tuple.equal r.tuple tuple then
        r.removed_at <- t.revision)
    (records_for t tuple.Tuple.obj tuple.Tuple.relation);
  head t

let tuple_count t =
  Hashtbl.fold
    (fun _ records acc ->
      acc + List.length (List.filter (fun r -> r.removed_at = max_int) !records))
    t.index 0

(* --- Snapshot resolution ------------------------------------------------ *)

type consistency =
  | Latest
  | At_least of Zookie.t
  | Snapshot of Zookie.t

type check_error =
  | Depth_exceeded of int
  | Future_token of {
      token : Zookie.t;
      head : Zookie.t;
    }
  | Snapshot_gone of {
      token : Zookie.t;
      epoch : int;
    }

let check_error_to_string = function
  | Depth_exceeded budget ->
    Printf.sprintf "userset expansion exceeded depth budget %d" budget
  | Future_token { token; head } ->
    Printf.sprintf "consistency token %s is newer than head %s" (Zookie.to_string token)
      (Zookie.to_string head)
  | Snapshot_gone { token; epoch } ->
    Printf.sprintf "snapshot %s predates the current policy epoch %d"
      (Zookie.to_string token) epoch

(* The revision to evaluate at. [At_least z] never serves a snapshot
   older than the caller's token: the head either covers z (answer at
   head) or the token is from the future (error, fail closed).
   [Snapshot z] pins z's exact same-epoch revision; snapshots from an
   older epoch were rebuilt away by the reload that bumped it. *)
let resolve_revision t = function
  | Latest -> Ok t.revision
  | At_least z ->
    if Zookie.newer_than z (head t) then Error (Future_token { token = z; head = head t })
    else Ok t.revision
  | Snapshot z ->
    if Zookie.newer_than z (head t) then Error (Future_token { token = z; head = head t })
    else if Zookie.epoch z < t.epoch then
      Error (Snapshot_gone { token = z; epoch = t.epoch })
    else Ok (Zookie.revision z)

(* --- Expansion ---------------------------------------------------------- *)

(* Contextual tuples (OpenFGA's term): request-scoped facts the caller
   supplies, visible at every snapshot but never stored — the PEP uses
   them to graft the requester into the DN-prefix trie. *)

let visible_at ~revision records =
  List.filter_map
    (fun r ->
      if r.added_at <= revision && revision < r.removed_at then Some r.tuple else None)
    records

let check ?(budget = default_budget) ?(context = []) ?(consistency = Latest) t
    ~(obj : Tuple.obj) ~relation ~user : (bool, check_error) result =
  match resolve_revision t consistency with
  | Error e -> Error e
  | Ok revision ->
    let visible (o : Tuple.obj) rel =
      let stored = visible_at ~revision (records_for t o rel) in
      let contextual =
        List.filter
          (fun (c : Tuple.t) -> Tuple.obj_equal c.Tuple.obj o && c.Tuple.relation = rel)
          context
      in
      stored @ contextual
    in
    let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let queue : (Tuple.obj * string * int) Queue.t = Queue.create () in
    let push o rel depth =
      let key = index_key o rel in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        Queue.add (o, rel, depth) queue
      end
    in
    push obj relation 0;
    let result = ref (Ok false) in
    (try
       while not (Queue.is_empty queue) do
         let o, rel, depth = Queue.pop queue in
         if depth > budget then begin
           (* Breadth-first order: everything within the budget has
              already been examined without finding the user, so the
              remaining graph is out of reach — indeterminate. *)
           result := Error (Depth_exceeded budget);
           raise Exit
         end;
         let rec apply = function
           | This ->
             List.iter
               (fun (tup : Tuple.t) ->
                 match tup.Tuple.subject with
                 | Tuple.User u ->
                   if String.equal u user then begin
                     result := Ok true;
                     raise Exit
                   end
                 | Tuple.Userset { uobj; urelation } -> push uobj urelation (depth + 1))
               (visible o rel)
           | Computed_userset r -> push o r (depth + 1)
           | Tuple_to_userset { tupleset; computed } ->
             List.iter
               (fun (tup : Tuple.t) ->
                 match tup.Tuple.subject with
                 | Tuple.Userset { uobj; _ } -> push uobj computed (depth + 1)
                 | Tuple.User s -> begin
                   (* a tupleset subject naming an object, Zanzibar's
                      parent-folder shape *)
                   match Tuple.obj_of_string s with
                   | Some uobj -> push uobj computed (depth + 1)
                   | None -> ()
                 end)
               (visible o tupleset)
           | Union rewrites -> List.iter apply rewrites
         in
         apply (rule t ~namespace:o.Tuple.namespace ~relation:rel)
       done
     with Exit -> ());
    !result
