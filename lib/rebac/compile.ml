(* Compiling Figure-3-class policies into relation tuples.

   The RSL policy language decides subject applicability by DN-prefix
   match: a statement applies to a subject when its subject pattern is a
   leading segment of the subject's DN. That is a relationship question
   in disguise, and this module makes the disguise explicit:

     - Every prefix of every statement's subject pattern becomes a
       *group* object in a trie, [grp:<encoded prefix>]. Parent nodes
       carry a [child] tuple naming each one-component extension:

         grp:<P>#child@grp:<P + rdn>#member

       with the rewrite rule

         (grp, member) = Union [This; Tuple_to_userset (child -> member)]

       so membership at a deeper (more specific) node propagates to
       every prefix above it.

     - Each statement becomes [stmt:<source>/<index>] with

         stmt:<s>#subject@grp:<its full pattern>#member

       and the rule (stmt, applicable) = Computed_userset "subject", so
       "does this statement apply to this requester?" is a plain
       {!Store.check} on [stmt:<s>#applicable].

     - At request time the requester is grafted into the trie with one
       *contextual* tuple at the deepest trie node that is a structural
       prefix of their DN:

         grp:<deepest prefixing node>#member@user:<DN>

   Equivalence with [Types.statement_applies] (structural [Dn.is_prefix])
   is a chain argument: all prefixes of all patterns are nodes, so the
   nodes prefixing a given subject form a chain under the one-component
   [child] edges; the contextual tuple sits at the chain's deepest
   element, and expansion from any pattern node P reaches it exactly when
   P lies on the chain — i.e. exactly when P prefixes the subject. The
   QCheck differential suite ([test_rebac]) holds this compilation to
   decision-and-reason equality with [Compile.eval] over generated
   policy/request pairs.

   The decision procedure below ([decide]) mirrors [Eval.evaluate] and
   [Combine.evaluate_compiled] clause by clause — only the applicability
   test is swapped for graph expansion; residual constraint evaluation
   reuses the exported [Eval] primitives so the reasons (violated
   requirement, considered-clause counts, denying source) come out
   identical, not just the verdicts. *)

module Types = Grid_policy.Types
module Eval = Grid_policy.Eval
module Combine = Grid_policy.Combine

let group_ns = "grp"
let stmt_ns = "stmt"
let member_rel = "member"
let child_rel = "child"
let subject_rel = "subject"
let applicable_rel = "applicable"

(* --- Injective encodings ------------------------------------------------ *)

(* Object ids may not contain '#' or '@' (tuple syntax), so those bytes
   — legal in DN values — are percent-escaped before length-prefixing.
   Length prefixes over the escaped parts keep the whole encoding
   injective: no choice of attrs/values can collide, including values
   containing '/', '=', '\x00' or each other's separators. (The compiled
   RSL index had exactly such a collision before it, too, moved to
   length-prefixed keys; see test_policy_compile's edge-case suite.) *)
let escape s =
  let needs_escape c = c = '%' || c = '#' || c = '@' in
  if not (String.exists needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let encoded_part s =
  let e = escape s in
  Printf.sprintf "%d.%s" (String.length e) e

(* "p" then each rdn as <len>.attr<len>.value; the bare "p" is the trie
   root (the empty prefix, which prefixes every subject). *)
let prefix_id (rdns : Grid_gsi.Dn.rdn list) =
  "p"
  ^ String.concat ""
      (List.map
         (fun (r : Grid_gsi.Dn.rdn) -> encoded_part r.attr ^ encoded_part r.value)
         rdns)

let group_obj rdns = Tuple.obj ~namespace:group_ns ~id:(prefix_id rdns)

(* Keyed by source *position*, not name: nothing stops two sources from
   sharing a name, and colliding statement objects would cross-wire
   their subject tuples. *)
let stmt_obj ~source_index ~index =
  Tuple.obj ~namespace:stmt_ns ~id:(Printf.sprintf "%d.%d" source_index index)

(* --- The compiled plan -------------------------------------------------- *)

type compiled_statement = {
  st : Types.statement;
  stmt_obj : Tuple.obj;
}

type source_plan = {
  name : string;
  statements : compiled_statement list;
}

type t = {
  sources : source_plan list;
  nodes : (string, int) Hashtbl.t;  (* prefix_id -> depth, for context placement *)
  tuples : Tuple.t list;
  rules : (string * string * Store.rewrite) list;
}

let rules =
  [ (group_ns, member_rel,
     Store.Union
       [ Store.This;
         Store.Tuple_to_userset { tupleset = child_rel; computed = member_rel } ]);
    (stmt_ns, applicable_rel, Store.Computed_userset subject_rel) ]

let prefixes_of (dn : Grid_gsi.Dn.t) =
  (* shortest first: [], [r1], [r1;r2], ... *)
  List.rev
    (List.fold_left (fun (acc : Grid_gsi.Dn.t list) rdn ->
         match acc with
         | longest :: _ -> (longest @ [ rdn ]) :: acc
         | [] -> assert false)
       [ [] ] dn)

let of_sources (sources : Combine.source list) : t =
  let nodes = Hashtbl.create 64 in
  let tuples = ref [] in
  let add_node (prefix : Grid_gsi.Dn.t) =
    let id = prefix_id prefix in
    if not (Hashtbl.mem nodes id) then begin
      Hashtbl.add nodes id (List.length prefix);
      match List.rev prefix with
      | [] -> ()  (* the root has no parent *)
      | _ :: parent_rev ->
        let parent = List.rev parent_rev in
        tuples :=
          Tuple.make (group_obj parent) ~relation:child_rel
            (Tuple.Userset (Tuple.userset (group_obj prefix) member_rel))
          :: !tuples
    end
  in
  let plans =
    List.mapi
      (fun source_index (s : Combine.source) ->
        let statements =
          List.mapi
            (fun index (st : Types.statement) ->
              List.iter add_node (prefixes_of st.Types.subject_pattern);
              let stmt_obj = stmt_obj ~source_index ~index in
              tuples :=
                Tuple.make stmt_obj ~relation:subject_rel
                  (Tuple.Userset
                     (Tuple.userset (group_obj st.Types.subject_pattern) member_rel))
                :: !tuples;
              { st; stmt_obj })
            s.Combine.policy
        in
        { name = s.Combine.name; statements })
      sources
  in
  { sources = plans; nodes; tuples = List.rev !tuples; rules }

let of_policy ?(name = "policy") policy = of_sources [ Combine.source ~name policy ]

let tuples t = t.tuples
let tuple_count t = List.length t.tuples

let install t store =
  List.iter (fun (namespace, relation, rw) -> Store.set_rule store ~namespace ~relation rw)
    t.rules;
  Store.write_batch store t.tuples

let load ?epoch t =
  let store = Store.create ?epoch () in
  ignore (install t store);
  store

(* The one contextual tuple grafting the requester into the trie: at the
   deepest node structurally prefixing the subject. No node prefixes the
   subject only when the policy set is empty (the root node prefixes
   everything) — then nothing applies and default-deny falls out. *)
let context_for t (subject : Grid_gsi.Dn.t) : Tuple.t list =
  let rec deepest = function
    | [] -> None
    | prefix :: shorter ->
      let id = prefix_id prefix in
      if Hashtbl.mem t.nodes id then Some prefix else deepest shorter
  in
  match deepest (List.rev (prefixes_of subject)) with
  | None -> []
  | Some prefix ->
    [ Tuple.make (group_obj prefix) ~relation:member_rel
        (Tuple.User (Grid_gsi.Dn.to_string subject)) ]

(* --- Decision procedure ------------------------------------------------- *)

exception Check_failed of Store.check_error

let applies store ?budget ?consistency ~context (cs : compiled_statement) ~user =
  match
    Store.check ?budget ~context ?consistency store ~obj:cs.stmt_obj
      ~relation:applicable_rel ~user
  with
  | Ok b -> b
  | Error e -> raise (Check_failed e)

(* [Eval.requirement_violation] is not exported; this is its text,
   against the exported [constr_satisfied]. *)
let is_action_guard (c : Types.constr) = c.Types.attribute = "action"

let requirement_violation ~subject view (clause : Types.clause) =
  let guards, obligations = List.partition is_action_guard clause in
  if not (List.for_all (Eval.constr_satisfied ~subject view) guards) then None
  else List.find_opt (fun c -> not (Eval.constr_satisfied ~subject view c)) obligations

(* Mirrors [Eval.evaluate] with the applicability scan swapped for graph
   checks; everything downstream of applicability is the same code
   shape, so decisions and reasons match the compiled RSL engine
   exactly. *)
let decide_source store ?budget ?consistency t (sp : source_plan)
    (request : Types.request) : Eval.decision =
  let subject = request.Types.subject in
  let view = Eval.View.of_request request in
  let context = context_for t subject in
  let user = Grid_gsi.Dn.to_string subject in
  let applicable =
    List.filter_map
      (fun cs ->
        if applies store ?budget ?consistency ~context cs ~user then Some cs.st else None)
      sp.statements
  in
  let violated =
    List.find_map
      (fun (st : Types.statement) ->
        if st.Types.kind <> Types.Requirement then None
        else
          List.find_map
            (fun clause ->
              match requirement_violation ~subject view clause with
              | Some constr ->
                Some
                  (Eval.Requirement_violated
                     { subject_pattern = st.Types.subject_pattern; constr })
              | None -> None)
            st.Types.clauses)
      applicable
  in
  match violated with
  | Some reason -> Eval.Deny reason
  | None ->
    let grants =
      List.filter (fun (st : Types.statement) -> st.Types.kind = Types.Grant) applicable
    in
    if grants = [] then Eval.Deny Eval.No_applicable_grant
    else
      let clauses = List.concat_map (fun (st : Types.statement) -> st.Types.clauses) grants in
      if List.exists (Eval.clause_satisfied ~subject view) clauses then Eval.Permit
      else Eval.Deny (Eval.No_satisfied_clause { considered = List.length clauses })

(* Mirrors [Combine.evaluate_compiled]: conjunctive, first denial wins,
   empty fails closed; per-source instrumentation under the same
   ["policy.eval"] span and [policy_eval_total] counter vocabulary. *)
let decide ?obs ?budget ?consistency t store (request : Types.request) :
    (Combine.combined_decision, Store.check_error) result =
  let rec go = function
    | [] -> Combine.Permit
    | sp :: rest -> begin
      match
        Eval.observed_with ?obs ~source:sp.name
          ~eval:(fun req -> decide_source store ?budget ?consistency t sp req)
          request
      with
      | Eval.Permit -> go rest
      | Eval.Deny reason -> Combine.Deny { source = sp.name; reason }
    end
  in
  if t.sources = [] then
    Ok (Combine.Deny { source = "(none)"; reason = Eval.No_applicable_grant })
  else match go t.sources with
    | d -> Ok d
    | exception Check_failed e -> Error e
