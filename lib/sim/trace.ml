(* Interaction traces.

   The Figure 1/2 reproductions print "who sent what to whom when" arrows;
   components record those arrows here. A trace is an ordered list of
   events, each a timestamped (source, target, label) triple.

   [find]/[count] are hot in tests and workload assertions, so entries are
   indexed by label as they are recorded: both are served from the index
   ([count] in O(1)) instead of re-reversing the whole trace per query. *)

type entry = {
  at : Clock.time;
  source : string;
  target : string;
  label : string;
}

type t = {
  mutable entries : entry list;              (* reverse order *)
  mutable length : int;
  by_label : (string, entry list ref * int ref) Hashtbl.t;
}

let create () = { entries = []; length = 0; by_label = Hashtbl.create 32 }

let record t ~at ~source ~target label =
  let e = { at; source; target; label } in
  t.entries <- e :: t.entries;
  t.length <- t.length + 1;
  match Hashtbl.find_opt t.by_label label with
  | Some (entries, count) ->
    entries := e :: !entries;
    incr count
  | None -> Hashtbl.replace t.by_label label (ref [ e ], ref 1)

let entries t = List.rev t.entries

let length t = t.length

let pp_entry ppf e =
  Fmt.pf ppf "%8.3fs  %-14s -> %-14s  %s" e.at e.source e.target e.label

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_entry) (entries t)

let find t ~label =
  match Hashtbl.find_opt t.by_label label with
  | Some (entries, _) -> List.rev !entries
  | None -> []

let count t ~label =
  match Hashtbl.find_opt t.by_label label with
  | Some (_, count) -> !count
  | None -> 0
