(* Network latency model with fault injection.

   Grid components exchange messages through [send], which delivers the
   handler after a latency drawn from a simple model: a base one-way latency
   plus uniform jitter, both configurable. A zero-latency model is available
   for microbenchmarks where only CPU cost matters.

   On top of the latency model sits a fault layer: per-message drop,
   duplicate-delivery, and extra-delay sampling, per-link partitions, and a
   scriptable fault schedule on the sim clock. Fault sampling draws from its
   own seeded stream, independent of the latency stream, so the sequence of
   latencies assigned to delivered messages is identical whether or not
   faults are enabled — latency-sensitive traces stay stable when chaos is
   switched on. *)

module Faults = struct
  type profile = {
    drop : float;  (* probability a message is silently dropped *)
    duplicate : float;  (* probability a message is delivered twice *)
    delay_probability : float;  (* probability of extra delay *)
    max_extra_delay : Clock.time;  (* extra delay ~ U[0, max_extra_delay) *)
  }

  let none = { drop = 0.0; duplicate = 0.0; delay_probability = 0.0; max_extra_delay = 0.0 }

  let check p name =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Network.Faults: %s must be a probability, got %g" name p)

  let profile ?(drop = 0.0) ?(duplicate = 0.0) ?(delay_probability = 0.0)
      ?(max_extra_delay = 0.0) () =
    check drop "drop";
    check duplicate "duplicate";
    check delay_probability "delay_probability";
    if max_extra_delay < 0.0 then
      invalid_arg "Network.Faults: max_extra_delay must be non-negative";
    { drop; duplicate; delay_probability; max_extra_delay }

  let is_none p = p = none
end

type fault_event =
  | Dropped of string
  | Duplicated of string
  | Delayed of string * Clock.time
  | Partitioned of string

type t = {
  engine : Engine.t;
  base_latency : Clock.time;
  jitter : Clock.time;
  rng : Grid_util.Rng.t;  (* latency stream *)
  fault_rng : Grid_util.Rng.t;  (* fault stream — independent of [rng] *)
  mutable faults : Faults.profile;
  partitions : (string, unit) Hashtbl.t;
  mutable listeners : (fault_event -> unit) list;
  mutable messages_sent : int;
  mutable messages_dropped : int;
  mutable messages_duplicated : int;
  mutable messages_delayed : int;
}

let create ?(base_latency = 0.005) ?(jitter = 0.002) ?(seed = 7) ?(faults = Faults.none)
    ?fault_seed engine =
  (* A distinct default derivation keeps the two streams decorrelated even
     when the caller only supplies [seed]. *)
  let fault_seed = match fault_seed with Some s -> s | None -> seed * 2654435761 + 1 in
  { engine; base_latency; jitter;
    rng = Grid_util.Rng.create ~seed;
    fault_rng = Grid_util.Rng.create ~seed:fault_seed;
    faults; partitions = Hashtbl.create 4; listeners = [];
    messages_sent = 0; messages_dropped = 0; messages_duplicated = 0; messages_delayed = 0 }

let zero_latency engine = create ~base_latency:0.0 ~jitter:0.0 ~seed:0 engine

let latency t =
  if t.jitter = 0.0 then t.base_latency
  else t.base_latency +. Grid_util.Rng.float t.rng t.jitter

let set_faults t profile = t.faults <- profile
let faults t = t.faults

let partition t ~link = Hashtbl.replace t.partitions link ()
let heal t ~link = Hashtbl.remove t.partitions link
let heal_all t = Hashtbl.reset t.partitions
let partitioned t ~link = Hashtbl.mem t.partitions link

let on_fault t f = t.listeners <- f :: t.listeners

let notify t event = List.iter (fun f -> f event) (List.rev t.listeners)

(* Install a fault profile at a future sim time. *)
let script t ~at profile =
  Engine.schedule_at t.engine at (fun () -> set_faults t profile)

let apply_schedule t schedule =
  List.iter (fun (at, profile) -> script t ~at profile) schedule

let send ?(link = "default") t deliver =
  t.messages_sent <- t.messages_sent + 1;
  (* Always draw the latency first, from the latency stream, even when the
     message ends up dropped: delivered messages then see the same latency
     sequence regardless of the fault configuration. *)
  let base = latency t in
  if Hashtbl.mem t.partitions link then begin
    t.messages_dropped <- t.messages_dropped + 1;
    notify t (Partitioned link)
  end
  else begin
    let f = t.faults in
    (* Short-circuit on zero probabilities so a fault-free network never
       advances the fault stream. *)
    let dropped = f.Faults.drop > 0.0 && Grid_util.Rng.float t.fault_rng 1.0 < f.Faults.drop in
    if dropped then begin
      t.messages_dropped <- t.messages_dropped + 1;
      notify t (Dropped link)
    end
    else begin
      let extra =
        if
          f.Faults.delay_probability > 0.0
          && Grid_util.Rng.float t.fault_rng 1.0 < f.Faults.delay_probability
        then Grid_util.Rng.float t.fault_rng f.Faults.max_extra_delay
        else 0.0
      in
      if extra > 0.0 then begin
        t.messages_delayed <- t.messages_delayed + 1;
        notify t (Delayed (link, extra))
      end;
      Engine.schedule_after t.engine (base +. extra) deliver;
      if
        f.Faults.duplicate > 0.0
        && Grid_util.Rng.float t.fault_rng 1.0 < f.Faults.duplicate
      then begin
        t.messages_duplicated <- t.messages_duplicated + 1;
        notify t (Duplicated link);
        (* The duplicate takes its own (fault-stream) latency so it arrives
           at a different time than the original. *)
        let dup_latency =
          t.base_latency
          +. Grid_util.Rng.float t.fault_rng (t.jitter +. f.Faults.max_extra_delay)
        in
        Engine.schedule_after t.engine (base +. dup_latency) deliver
      end
    end
  end

let messages_sent t = t.messages_sent
let messages_dropped t = t.messages_dropped
let messages_duplicated t = t.messages_duplicated
let messages_delayed t = t.messages_delayed
let engine t = t.engine
