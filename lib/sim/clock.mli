(** Virtual time: simulated seconds since the start of a run. *)

type time = float

val zero : time
val add : time -> time -> time
val compare : time -> time -> int
val ( <= ) : time -> time -> bool
val pp : time Fmt.t

val of_seconds : float -> time
val to_seconds : time -> float
val minutes : float -> time
val hours : float -> time

val days : float -> time
(** Multi-day soak campaigns are expressed in these. *)
