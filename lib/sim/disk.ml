(* Simulated stable storage with injectable faults.

   Mirrors Network's structure: a seeded fault stream independent of the
   payload traffic, a profile that can be swapped at runtime, and
   listeners bridging injected faults into whatever registry the caller
   observes with. Files are a pair of byte buffers — durable and
   volatile — and a crash is simply "the volatile half is (mostly)
   gone". *)

module Faults = struct
  type profile = {
    torn_write : float;
    fsync_latency : Clock.time;
    fsync_jitter : Clock.time;
  }

  let none = { torn_write = 0.0; fsync_latency = 0.0; fsync_jitter = 0.0 }

  let profile ?(torn_write = 0.0) ?(fsync_latency = 0.0) ?(fsync_jitter = 0.0) () =
    if torn_write < 0.0 || torn_write > 1.0 then
      invalid_arg
        (Printf.sprintf "Disk.Faults: torn_write must be a probability, got %g" torn_write);
    if fsync_latency < 0.0 || fsync_jitter < 0.0 then
      invalid_arg "Disk.Faults: fsync latencies must be non-negative";
    { torn_write; fsync_latency; fsync_jitter }
end

type event =
  | Synced of { file : string; latency : Clock.time; bytes : int }
  | Torn of { file : string; kept : int; lost : int }
  | Truncated of { file : string; lost : int }
  | Corrupted of { file : string; at : int }

type file = {
  mutable durable : Buffer.t;
  volatile : Buffer.t;
}

type t = {
  files : (string, file) Hashtbl.t;
  fault_rng : Grid_util.Rng.t;
  mutable faults : Faults.profile;
  mutable listeners : (event -> unit) list;
  mutable syncs : int;
  mutable sync_seconds : Clock.time;
  mutable crashes : int;
  mutable bytes_written : int;
}

let create ?(faults = Faults.none) ?(seed = 4242) () =
  { files = Hashtbl.create 8;
    fault_rng = Grid_util.Rng.create ~seed;
    faults;
    listeners = [];
    syncs = 0;
    sync_seconds = 0.0;
    crashes = 0;
    bytes_written = 0 }

let set_faults t profile = t.faults <- profile
let faults t = t.faults

let on_event t f = t.listeners <- f :: t.listeners
let notify t event = List.iter (fun f -> f event) (List.rev t.listeners)

let find t file = Hashtbl.find_opt t.files file

let find_or_create t file =
  match find t file with
  | Some f -> f
  | None ->
    let f = { durable = Buffer.create 256; volatile = Buffer.create 256 } in
    Hashtbl.replace t.files file f;
    f

let append t ~file bytes =
  let f = find_or_create t file in
  Buffer.add_string f.volatile bytes;
  t.bytes_written <- t.bytes_written + String.length bytes

let sample_fsync_latency t =
  let p = t.faults in
  if p.Faults.fsync_jitter = 0.0 then p.Faults.fsync_latency
  else p.Faults.fsync_latency +. Grid_util.Rng.float t.fault_rng p.Faults.fsync_jitter

let sync t ~file =
  match find t file with
  | None -> 0.0
  | Some f ->
    let pending = Buffer.length f.volatile in
    let latency = sample_fsync_latency t in
    t.syncs <- t.syncs + 1;
    t.sync_seconds <- t.sync_seconds +. latency;
    if pending > 0 then begin
      Buffer.add_buffer f.durable f.volatile;
      Buffer.clear f.volatile
    end;
    notify t (Synced { file; latency; bytes = pending });
    latency

let read t ~file =
  match find t file with
  | None -> None
  | Some f -> Some (Buffer.contents f.durable ^ Buffer.contents f.volatile)

let durable t ~file =
  match find t file with None -> None | Some f -> Some (Buffer.contents f.durable)

let size t ~file =
  match find t file with
  | None -> 0
  | Some f -> Buffer.length f.durable + Buffer.length f.volatile

let unsynced t ~file =
  match find t file with None -> 0 | Some f -> Buffer.length f.volatile

let exists t ~file = Hashtbl.mem t.files file
let delete t ~file = Hashtbl.remove t.files file

let truncate t ~file =
  let f = find_or_create t file in
  Buffer.clear f.durable;
  Buffer.clear f.volatile

let rename t ~src ~dst =
  match find t src with
  | None -> invalid_arg (Printf.sprintf "Disk.rename: no such file %s" src)
  | Some f ->
    Hashtbl.remove t.files src;
    Buffer.clear f.volatile;
    Hashtbl.replace t.files dst f

let corrupt t ~file ~at =
  match find t file with
  | None -> ()
  | Some f ->
    let contents = Buffer.contents f.durable in
    if at >= 0 && at < String.length contents then begin
      let b = Bytes.of_string contents in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
      let fresh = Buffer.create (Bytes.length b) in
      Buffer.add_bytes fresh b;
      f.durable <- fresh;
      notify t (Corrupted { file; at })
    end

let crash t =
  t.crashes <- t.crashes + 1;
  (* Deterministic iteration order so the fault stream is consumed
     reproducibly regardless of hashtable layout. *)
  let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files []) in
  List.iter
    (fun file ->
      let f = Hashtbl.find t.files file in
      let pending = Buffer.length f.volatile in
      if pending > 0 then begin
        let p = t.faults in
        let torn =
          p.Faults.torn_write > 0.0
          && Grid_util.Rng.float t.fault_rng 1.0 < p.Faults.torn_write
        in
        if torn then begin
          (* A proper prefix: at least one byte lost, possibly all but one
             kept — the classic torn sector. *)
          let kept = Grid_util.Rng.int t.fault_rng pending in
          Buffer.add_string f.durable (Buffer.sub f.volatile 0 kept);
          Buffer.clear f.volatile;
          notify t (Torn { file; kept; lost = pending - kept })
        end
        else begin
          Buffer.clear f.volatile;
          notify t (Truncated { file; lost = pending })
        end
      end)
    names

let syncs t = t.syncs
let sync_seconds t = t.sync_seconds
let crashes t = t.crashes
let bytes_written t = t.bytes_written

let files t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files [])
