(** Interaction traces: timestamped component-to-component arrows.

    Used to regenerate the interaction diagrams of the paper's Figures 1
    and 2 and to assert, in tests, that a flow really passed through a
    given component (e.g. "the PEP callout ran before job submission"). *)

type entry = {
  at : Clock.time;
  source : string;
  target : string;
  label : string;
}

type t

val create : unit -> t
val record : t -> at:Clock.time -> source:string -> target:string -> string -> unit

val entries : t -> entry list
(** In chronological (recording) order. *)

val length : t -> int
(** Total entries recorded, O(1). *)

val pp_entry : entry Fmt.t
val pp : t Fmt.t

val find : t -> label:string -> entry list
(** Entries with this label, chronological; served from a per-label index. *)

val count : t -> label:string -> int
(** O(1). *)
