(** Simulated stable storage with injectable faults.

    The storage analogue of {!Network}: named append-only files split
    into a durable region and a volatile (unsynced) tail, a seeded fault
    stream independent of the data written, and listeners so chaos runs
    are measurable. A {!crash} discards the volatile tail of every file —
    either entirely (truncated tail) or, with the profile's
    [torn_write] probability, keeping a random prefix (torn final
    record), the two corruption modes a write-ahead journal must survive.

    Fsync latency is sampled per {!sync} from the fault stream and
    accumulated; the simulation engine is not blocked (everything inside
    a resource happens within one simulation event), but the sampled
    latencies are reported through {!on_event} so the store layer can
    feed them into latency histograms and the recovery benchmark can
    charge them against recovery time. *)

module Faults : sig
  type profile = {
    torn_write : float;
    (** probability that a crash keeps a partial prefix of the unsynced
        tail instead of dropping it whole *)
    fsync_latency : Clock.time;  (** base latency charged per fsync *)
    fsync_jitter : Clock.time;  (** extra latency ~ U[0, fsync_jitter) *)
  }

  val none : profile

  val profile :
    ?torn_write:float ->
    ?fsync_latency:Clock.time ->
    ?fsync_jitter:Clock.time ->
    unit ->
    profile
  (** Validates ranges; raises [Invalid_argument] on a [torn_write]
      outside [0, 1] or negative latencies. *)
end

type event =
  | Synced of { file : string; latency : Clock.time; bytes : int }
      (** a sync made [bytes] volatile bytes durable *)
  | Torn of { file : string; kept : int; lost : int }
      (** crash kept a torn prefix of the unsynced tail *)
  | Truncated of { file : string; lost : int }
      (** crash dropped the whole unsynced tail *)
  | Corrupted of { file : string; at : int }
      (** a byte was flipped in place (bit rot, via {!corrupt}) *)

type t

val create : ?faults:Faults.profile -> ?seed:int -> unit -> t
(** Fault sampling draws from its own stream seeded by [seed], so the
    bytes written never influence which crash outcome is drawn. *)

val set_faults : t -> Faults.profile -> unit
val faults : t -> Faults.profile

val on_event : t -> (event -> unit) -> unit

(** {1 File operations} *)

val append : t -> file:string -> string -> unit
(** Append bytes to the volatile tail (creating the file if needed). *)

val sync : t -> file:string -> Clock.time
(** Make the file's volatile tail durable; returns the sampled fsync
    latency (0 when nothing was pending). Unknown files sync vacuously. *)

val read : t -> file:string -> string option
(** Durable content followed by the volatile tail — what a reader sees
    while the process is alive. [None] if the file does not exist. *)

val durable : t -> file:string -> string option
(** Only the durable region — what would survive a clean crash. *)

val size : t -> file:string -> int
(** Total bytes (durable + volatile); 0 for missing files. *)

val unsynced : t -> file:string -> int
(** Bytes in the volatile tail. *)

val exists : t -> file:string -> bool
val delete : t -> file:string -> unit

val truncate : t -> file:string -> unit
(** Reset the file to empty (durable and volatile), keeping it existing.
    Models [O_TRUNC] + sync: the truncation itself is durable. *)

val rename : t -> src:string -> dst:string -> unit
(** Atomic whole-file rename, replacing [dst]; the renamed content is
    the durable region only — callers must {!sync} first (matching the
    POSIX pattern: write tmp, fsync tmp, rename). The volatile tail of
    [src] is discarded. Raises [Invalid_argument] when [src] does not
    exist. *)

val corrupt : t -> file:string -> at:int -> unit
(** Flip one durable byte in place: the bit-rot injector used by
    crash-safety tests. Out-of-range offsets are ignored. *)

val files : t -> string list
(** Sorted file names. *)

(** {1 Crash} *)

val crash : t -> unit
(** Lose the volatile tail of every file. Per file with a non-empty
    tail, with probability [torn_write] a uniformly-drawn proper prefix
    survives into the durable region (torn write); otherwise the tail
    vanishes (truncated tail). Durable bytes are never touched. *)

(** {1 Counters} *)

val syncs : t -> int
val sync_seconds : t -> Clock.time
(** Total sampled fsync latency since creation. *)

val crashes : t -> int
val bytes_written : t -> int
