(** Network latency model over the simulation engine, with fault injection.

    Message delivery incurs a base one-way latency plus uniform jitter,
    making component interaction traces (Figure 1/2 reproductions) show
    realistic orderings.

    A configurable fault layer can drop, duplicate, or delay messages and
    partition named links. Fault sampling uses a seeded stream independent
    of the latency stream: enabling faults never perturbs the latency
    sequence seen by delivered messages, so span/trace expectations remain
    stable. *)

(** Fault profiles: per-message probabilities sampled on every [send]. *)
module Faults : sig
  type profile = {
    drop : float;
    duplicate : float;
    delay_probability : float;
    max_extra_delay : Clock.time;
  }

  val none : profile

  val profile :
    ?drop:float ->
    ?duplicate:float ->
    ?delay_probability:float ->
    ?max_extra_delay:Clock.time ->
    unit ->
    profile
  (** Build a profile, validating that probabilities lie in [0, 1].
      Raises [Invalid_argument] otherwise. *)

  val is_none : profile -> bool
end

(** Fault events carry the link label of the affected message. *)
type fault_event =
  | Dropped of string
  | Duplicated of string
  | Delayed of string * Clock.time
  | Partitioned of string  (** dropped because the link is partitioned *)

type t

val create :
  ?base_latency:Clock.time ->
  ?jitter:Clock.time ->
  ?seed:int ->
  ?faults:Faults.profile ->
  ?fault_seed:int ->
  Engine.t ->
  t
(** Default: 5 ms base latency, up to 2 ms jitter, no faults. When
    [fault_seed] is omitted it is derived from [seed] such that the two
    streams stay decorrelated. *)

val zero_latency : Engine.t -> t
(** A network that delivers instantly (still via the event queue): used by
    microbenchmarks isolating CPU cost. *)

val send : ?link:string -> t -> (unit -> unit) -> unit
(** Deliver a message: run the handler after a sampled latency — unless the
    fault layer drops it (silently, beyond counters/listeners). [link]
    (default ["default"]) names the hop for partition checks and fault
    events. *)

val set_faults : t -> Faults.profile -> unit
val faults : t -> Faults.profile

val partition : t -> link:string -> unit
(** Partition a link: every message sent on it is dropped until [heal]. *)

val heal : t -> link:string -> unit
val heal_all : t -> unit
val partitioned : t -> link:string -> bool

val on_fault : t -> (fault_event -> unit) -> unit
(** Register a listener invoked synchronously on every injected fault, in
    registration order. Used to bridge fault events into [Grid_obs]. *)

val script : t -> at:Clock.time -> Faults.profile -> unit
(** Install a fault profile at a future simulation time. *)

val apply_schedule : t -> (Clock.time * Faults.profile) list -> unit
(** [apply_schedule t schedule] scripts every [(at, profile)] entry. *)

val messages_sent : t -> int
val messages_dropped : t -> int
val messages_duplicated : t -> int
val messages_delayed : t -> int

val engine : t -> Engine.t
