(* Virtual time.

   All timestamps in the system are simulated seconds since the start of the
   run, carried as floats. Certificate lifetimes, job walltimes, scheduler
   quanta and network latencies are all expressed in this unit. *)

type time = float

let zero = 0.0
let add = ( +. )
let compare = Float.compare
let ( <= ) a b = Float.compare a b <= 0
let pp ppf t = Fmt.pf ppf "t=%.3fs" t

let of_seconds s = s
let to_seconds t = t
let minutes m = m *. 60.0
let hours h = h *. 3600.0
let days d = d *. 86400.0
