(** Durable state store: write-ahead journal + periodic snapshots.

    One store persists one component's state under a name prefix on a
    simulated disk: [<name>.journal] holds framed event records,
    [<name>.snapshot] the last compacted state. Snapshots are written to
    [<name>.snapshot.tmp], fsynced, atomically renamed over the old
    snapshot, and only then is the journal truncated — so every crash
    point leaves either the old snapshot with the full journal or the
    new snapshot with a (possibly still untruncated) journal, never a
    half-written snapshot. Recovery is snapshot entries + journal
    records; rebuilders must treat re-seen records as idempotent, which
    covers the rename-before-truncate crash window.

    Metrics (when built with an observer): [store_appends_total{file}],
    [store_bytes{file}], [store_fsyncs_total], [store_fsync_seconds],
    [store_snapshots_total], [store_torn_writes_total],
    [store_lost_tail_bytes_total]. *)

type t

val create :
  ?obs:Grid_obs.Obs.t ->
  ?sync:Journal.sync_policy ->
  ?snapshot_every:int ->
  disk:Grid_sim.Disk.t ->
  name:string ->
  unit ->
  t
(** [snapshot_every n] compacts after every [n] journal appends once a
    snapshot source is installed; omitted means journal-only (no
    compaction). Raises [Invalid_argument] when [n <= 0]. *)

val disk : t -> Grid_sim.Disk.t
val name : t -> string
val journal_file : t -> string
val snapshot_file : t -> string

val set_snapshot_source : t -> (unit -> string list) -> unit
(** Install the state serializer: called at compaction time to produce
    one record per live entity. *)

val append : t -> string -> unit
(** Journal one event record; may trigger compaction per
    [snapshot_every]. *)

val appends : t -> int
val snapshots_taken : t -> int
val journal_bytes : t -> int

val snapshot_now : t -> unit
(** Force a compaction (no-op without a snapshot source). *)

val crash : t -> unit
(** Crash the underlying disk: unsynced tails are lost or torn per the
    disk's fault profile. State in memory is untouched — pair with the
    owner dropping its tables and calling {!recover}. *)

(** {1 Recovery} *)

type recovery = {
  snapshot_records : string list;  (** state entries from the snapshot *)
  journal_records : string list;  (** events since that snapshot *)
  snapshot_seq : int;  (** 0 when no snapshot existed *)
  dropped_bytes : int;  (** corrupt/torn tail bytes discarded, both files *)
  tmp_discarded : bool;  (** an unfinished snapshot attempt was removed *)
}

val recover : t -> recovery
(** Read back everything that survived. Discards a leftover
    [.snapshot.tmp], replays the snapshot then the journal, drops
    corrupt tails cleanly, and re-arms the store's snapshot counter so
    subsequent appends continue compacting. Counted under
    [recovery_replayed_records_total]. *)

(** {1 Verification} *)

type check = {
  check_file : string;
  check_records : int;
  check_bytes : int;
  check_dropped : int;
  check_corruption : Journal.corruption option;
}

val verify : t -> check list
(** Scan both files end to end without mutating anything. *)

val pp_check : check Fmt.t
