(* Percent-escaped key=value fields, tab-separated. *)

let must_escape = function
  | '%' | '\t' | '\n' | '\r' | '=' | ',' -> true
  | _ -> false

let escape s =
  if not (String.exists must_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] = '%' && !i + 2 < n then begin
         match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
         | Some h, Some l ->
           Buffer.add_char buf (Char.chr ((h * 16) + l));
           i := !i + 2
         | _ -> Buffer.add_char buf '%'
       end
       else Buffer.add_char buf s.[!i]);
      incr i
    done;
    Buffer.contents buf
  end

let encode fields =
  String.concat "\t"
    (List.map (fun (k, v) -> escape k ^ "=" ^ escape v) fields)

let decode payload =
  if payload = "" then []
  else
    List.filter_map
      (fun part ->
        match String.index_opt part '=' with
        | None -> if part = "" then None else Some (unescape part, "")
        | Some i ->
          Some
            ( unescape (String.sub part 0 i),
              unescape (String.sub part (i + 1) (String.length part - i - 1)) ))
      (String.split_on_char '\t' payload)

let field fields key = List.assoc_opt key fields

let require fields key =
  match field fields key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let encode_list items = String.concat "," (List.map escape items)

let decode_list s =
  if s = "" then [] else List.map unescape (String.split_on_char ',' s)
