(* Checksummed record framing over the simulated disk.

   Frame layout: magic 0xA7, 4-byte big-endian payload length, 8-byte
   checksum (SHA-256 prefix of the payload), payload. 13 bytes of
   header per record. *)

let magic = '\xa7'
let header_bytes = 13
let checksum_bytes = 8
let max_record_bytes = 16 * 1024 * 1024

type sync_policy =
  | Every_append
  | Every of int
  | Manual

type t = {
  disk : Grid_sim.Disk.t;
  file : string;
  sync_policy : sync_policy;
  mutable appends : int;
  mutable unsynced_appends : int;
}

let create ?(sync = Every_append) ~disk ~file () =
  (match sync with
  | Every n when n <= 0 -> invalid_arg "Journal: sync interval must be positive"
  | Every _ | Every_append | Manual -> ());
  { disk; file; sync_policy = sync; appends = 0; unsynced_appends = 0 }

let disk t = t.disk
let file t = t.file
let appends t = t.appends
let bytes t = Grid_sim.Disk.size t.disk ~file:t.file

let checksum payload = String.sub (Grid_crypto.Sha256.digest payload) 0 checksum_bytes

let frame payload =
  let len = String.length payload in
  let buf = Buffer.create (header_bytes + len) in
  Buffer.add_char buf magic;
  Buffer.add_char buf (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_string buf (checksum payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let sync t =
  ignore (Grid_sim.Disk.sync t.disk ~file:t.file);
  t.unsynced_appends <- 0

let append t payload =
  if String.length payload > max_record_bytes then
    invalid_arg
      (Printf.sprintf "Journal.append: payload of %d bytes exceeds the %d-byte bound"
         (String.length payload) max_record_bytes);
  Grid_sim.Disk.append t.disk ~file:t.file (frame payload);
  t.appends <- t.appends + 1;
  t.unsynced_appends <- t.unsynced_appends + 1;
  match t.sync_policy with
  | Every_append -> sync t
  | Every n -> if t.unsynced_appends >= n then sync t
  | Manual -> ()

(* --- Replay ------------------------------------------------------------ *)

type corruption =
  | Truncated_frame of { offset : int }
  | Checksum_mismatch of { offset : int }
  | Bad_magic of { offset : int }

let corruption_to_string = function
  | Truncated_frame { offset } -> Printf.sprintf "truncated frame at byte %d" offset
  | Checksum_mismatch { offset } -> Printf.sprintf "checksum mismatch at byte %d" offset
  | Bad_magic { offset } -> Printf.sprintf "bad magic at byte %d" offset

type replay = {
  records : string list;
  valid_bytes : int;
  dropped_bytes : int;
  corruption : corruption option;
}

let replay ~disk ~file =
  match Grid_sim.Disk.read disk ~file with
  | None -> { records = []; valid_bytes = 0; dropped_bytes = 0; corruption = None }
  | Some data ->
    let total = String.length data in
    let records = ref [] in
    let offset = ref 0 in
    let stop = ref None in
    let finished = ref false in
    while not !finished do
      let at = !offset in
      if at = total then finished := true
      else if total - at < header_bytes then begin
        stop := Some (Truncated_frame { offset = at });
        finished := true
      end
      else if data.[at] <> magic then begin
        stop := Some (Bad_magic { offset = at });
        finished := true
      end
      else begin
        let len =
          (Char.code data.[at + 1] lsl 24)
          lor (Char.code data.[at + 2] lsl 16)
          lor (Char.code data.[at + 3] lsl 8)
          lor Char.code data.[at + 4]
        in
        if len > max_record_bytes then begin
          (* An absurd length is corruption, not a huge record. *)
          stop := Some (Checksum_mismatch { offset = at });
          finished := true
        end
        else if total - at - header_bytes < len then begin
          stop := Some (Truncated_frame { offset = at });
          finished := true
        end
        else begin
          let stored = String.sub data (at + 5) checksum_bytes in
          let payload = String.sub data (at + header_bytes) len in
          if not (String.equal stored (checksum payload)) then begin
            stop := Some (Checksum_mismatch { offset = at });
            finished := true
          end
          else begin
            records := payload :: !records;
            offset := at + header_bytes + len
          end
        end
      end
    done;
    { records = List.rev !records;
      valid_bytes = !offset;
      dropped_bytes = total - !offset;
      corruption = !stop }
