(* Journal + snapshot store with compaction.

   The snapshot file reuses the journal's framing: record 0 is a meta
   record (kind=snapshot-meta, seq, count), followed by one state record
   per entity. Compaction order — write tmp, fsync tmp, rename, truncate
   journal — is what gives the crash-window guarantees documented in the
   interface. *)

type t = {
  disk : Grid_sim.Disk.t;
  name : string;
  obs : Grid_obs.Obs.t;
  journal : Journal.t;
  snapshot_every : int option;
  mutable snapshot_source : (unit -> string list) option;
  mutable appends_since_snapshot : int;
  mutable snapshot_seq : int;
  mutable snapshots_taken : int;
}

let journal_file_of name = name ^ ".journal"
let snapshot_file_of name = name ^ ".snapshot"
let tmp_file_of name = name ^ ".snapshot.tmp"

let observe_disk ~obs disk =
  if Grid_obs.Obs.enabled obs then
    Grid_sim.Disk.on_event disk (fun event ->
        let fault kind file detail =
          Grid_obs.Obs.emit obs ~layer:"disk" "disk.fault"
            ([ ("event", kind); ("file", file) ] @ detail)
        in
        match event with
        | Grid_sim.Disk.Synced { latency; _ } ->
          Grid_obs.Obs.incr obs "store_fsyncs_total";
          Grid_obs.Obs.observe obs "store_fsync_seconds" latency
        | Grid_sim.Disk.Torn { file; lost; _ } ->
          Grid_obs.Obs.incr obs ~labels:[ ("file", file) ] "store_torn_writes_total";
          Grid_obs.Obs.incr obs ~by:(float_of_int lost) "store_lost_tail_bytes_total";
          fault "torn" file [ ("lost", string_of_int lost) ]
        | Grid_sim.Disk.Truncated { file; lost } ->
          Grid_obs.Obs.incr obs ~labels:[ ("file", file) ] "store_truncated_tails_total";
          Grid_obs.Obs.incr obs ~by:(float_of_int lost) "store_lost_tail_bytes_total";
          fault "truncated" file [ ("lost", string_of_int lost) ]
        | Grid_sim.Disk.Corrupted { file; _ } ->
          Grid_obs.Obs.incr obs ~labels:[ ("file", file) ] "store_corruptions_total";
          fault "corrupted" file [])

let create ?(obs = Grid_obs.Obs.noop) ?sync ?snapshot_every ~disk ~name () =
  (match snapshot_every with
  | Some n when n <= 0 -> invalid_arg "Store: snapshot_every must be positive"
  | Some _ | None -> ());
  observe_disk ~obs disk;
  { disk;
    name;
    obs;
    journal = Journal.create ?sync ~disk ~file:(journal_file_of name) ();
    snapshot_every;
    snapshot_source = None;
    appends_since_snapshot = 0;
    snapshot_seq = 0;
    snapshots_taken = 0 }

let disk t = t.disk
let name t = t.name
let journal_file t = journal_file_of t.name
let snapshot_file t = snapshot_file_of t.name
let appends t = Journal.appends t.journal
let snapshots_taken t = t.snapshots_taken
let journal_bytes t = Journal.bytes t.journal

let set_snapshot_source t f = t.snapshot_source <- Some f

let set_size_gauges t =
  if Grid_obs.Obs.enabled t.obs then begin
    let gauge file =
      Grid_obs.Obs.set_gauge t.obs ~labels:[ ("file", file) ] "store_bytes"
        (float_of_int (Grid_sim.Disk.size t.disk ~file))
    in
    gauge (journal_file t);
    gauge (snapshot_file t)
  end

let meta_record ~seq ~count =
  Codec.encode
    [ ("kind", "snapshot-meta");
      ("seq", string_of_int seq);
      ("count", string_of_int count) ]

let write_snapshot t source =
  let entries = source () in
  let tmp = tmp_file_of t.name in
  Grid_sim.Disk.delete t.disk ~file:tmp;
  t.snapshot_seq <- t.snapshot_seq + 1;
  Grid_sim.Disk.append t.disk ~file:tmp
    (Journal.frame (meta_record ~seq:t.snapshot_seq ~count:(List.length entries)));
  List.iter (fun entry -> Grid_sim.Disk.append t.disk ~file:tmp (Journal.frame entry)) entries;
  ignore (Grid_sim.Disk.sync t.disk ~file:tmp);
  Grid_sim.Disk.rename t.disk ~src:tmp ~dst:(snapshot_file t);
  Grid_sim.Disk.truncate t.disk ~file:(journal_file t);
  t.appends_since_snapshot <- 0;
  t.snapshots_taken <- t.snapshots_taken + 1;
  if Grid_obs.Obs.enabled t.obs then begin
    Grid_obs.Obs.incr t.obs "store_snapshots_total";
    Grid_obs.Obs.set_gauge t.obs "store_snapshot_records" (float_of_int (List.length entries))
  end;
  set_size_gauges t

let snapshot_now t =
  match t.snapshot_source with None -> () | Some source -> write_snapshot t source

let append t payload =
  Journal.append t.journal payload;
  t.appends_since_snapshot <- t.appends_since_snapshot + 1;
  if Grid_obs.Obs.enabled t.obs then
    Grid_obs.Obs.incr t.obs ~labels:[ ("file", journal_file t) ] "store_appends_total";
  (match (t.snapshot_every, t.snapshot_source) with
  | Some every, Some source when t.appends_since_snapshot >= every ->
    write_snapshot t source
  | _ -> ());
  set_size_gauges t

let crash t = Grid_sim.Disk.crash t.disk

(* --- Recovery ---------------------------------------------------------- *)

type recovery = {
  snapshot_records : string list;
  journal_records : string list;
  snapshot_seq : int;
  dropped_bytes : int;
  tmp_discarded : bool;
}

let recover t =
  let tmp = tmp_file_of t.name in
  let tmp_discarded = Grid_sim.Disk.exists t.disk ~file:tmp in
  if tmp_discarded then Grid_sim.Disk.delete t.disk ~file:tmp;
  let snap = Journal.replay ~disk:t.disk ~file:(snapshot_file t) in
  let seq, snapshot_records =
    match snap.Journal.records with
    | meta :: entries -> begin
      let fields = Codec.decode meta in
      match (Codec.field fields "kind", Codec.field fields "seq") with
      | Some "snapshot-meta", Some seq ->
        ((match int_of_string_opt seq with Some s -> s | None -> 0), entries)
      | _ ->
        (* No meta record: treat the whole file as state entries. *)
        (0, meta :: entries)
    end
    | [] -> (0, [])
  in
  let jr = Journal.replay ~disk:t.disk ~file:(journal_file t) in
  t.snapshot_seq <- max t.snapshot_seq seq;
  t.appends_since_snapshot <- List.length jr.Journal.records;
  let replayed = List.length snapshot_records + List.length jr.Journal.records in
  if Grid_obs.Obs.enabled t.obs then begin
    Grid_obs.Obs.incr t.obs ~by:(float_of_int replayed) "recovery_replayed_records_total";
    Grid_obs.Obs.incr t.obs
      ~by:(float_of_int (snap.Journal.dropped_bytes + jr.Journal.dropped_bytes))
      "recovery_dropped_bytes_total"
  end;
  { snapshot_records;
    journal_records = jr.Journal.records;
    snapshot_seq = seq;
    dropped_bytes = snap.Journal.dropped_bytes + jr.Journal.dropped_bytes;
    tmp_discarded }

(* --- Verification ------------------------------------------------------ *)

type check = {
  check_file : string;
  check_records : int;
  check_bytes : int;
  check_dropped : int;
  check_corruption : Journal.corruption option;
}

let verify t =
  List.map
    (fun file ->
      let r = Journal.replay ~disk:t.disk ~file in
      { check_file = file;
        check_records = List.length r.Journal.records;
        check_bytes = Grid_sim.Disk.size t.disk ~file;
        check_dropped = r.Journal.dropped_bytes;
        check_corruption = r.Journal.corruption })
    [ journal_file t; snapshot_file t ]

let pp_check ppf c =
  Fmt.pf ppf "%s: %d records, %d bytes%s" c.check_file c.check_records c.check_bytes
    (match c.check_corruption with
    | None -> ", intact"
    | Some why ->
      Printf.sprintf ", %d bytes dropped (%s)" c.check_dropped
        (Journal.corruption_to_string why))
