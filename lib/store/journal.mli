(** Append-only, checksummed write-ahead journal over {!Grid_sim.Disk}.

    Record framing: a one-byte magic, a 4-byte big-endian payload
    length, the first 8 bytes of the payload's SHA-256, then the
    payload. Replay scans from the start and stops cleanly at the first
    frame that does not verify — a truncated header, a short payload
    (truncated tail), a checksum mismatch (torn write or bit rot) or a
    bad magic byte — dropping that frame and everything after it. A
    record is therefore either replayed bit-exact or not at all. *)

type sync_policy =
  | Every_append  (** fsync after each record: nothing is ever lost *)
  | Every of int  (** fsync every [n] records (and on {!sync}) *)
  | Manual  (** callers fsync explicitly; crashes may lose the tail *)

type t

val create : ?sync:sync_policy -> disk:Grid_sim.Disk.t -> file:string -> unit -> t
(** [sync] defaults to [Every_append]. Creating a journal never touches
    existing bytes — append continues after whatever is already there. *)

val disk : t -> Grid_sim.Disk.t
val file : t -> string

val append : t -> string -> unit
(** Frame, checksum and write one payload, fsyncing per the policy.
    Raises [Invalid_argument] on payloads over {!max_record_bytes}. *)

val sync : t -> unit
val appends : t -> int
val bytes : t -> int
(** Current journal size in bytes (durable + unsynced). *)

val max_record_bytes : int
(** Sanity bound (16 MiB) on a single payload; lengths beyond it are
    treated as corruption during replay. *)

(** {1 Replay} *)

type corruption =
  | Truncated_frame of { offset : int }
      (** fewer bytes than a header, or payload shorter than its length *)
  | Checksum_mismatch of { offset : int }
  | Bad_magic of { offset : int }

val corruption_to_string : corruption -> string

type replay = {
  records : string list;  (** verified payloads, append order *)
  valid_bytes : int;  (** prefix length that replayed cleanly *)
  dropped_bytes : int;  (** bytes after [valid_bytes] *)
  corruption : corruption option;
      (** why the scan stopped early; [None] on a clean tail *)
}

val replay : disk:Grid_sim.Disk.t -> file:string -> replay
(** Replay a journal file. A missing file replays as empty. Idempotent:
    replaying twice yields identical results. *)

val frame : string -> string
(** The on-disk bytes for one payload — exposed for tests that build
    corrupt journals by hand. *)
