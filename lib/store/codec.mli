(** Field codec for journal payloads.

    A payload is a flat [key=value] record: fields separated by tabs,
    keys and values percent-escaped so tabs, newlines and the separators
    themselves round-trip. Order-preserving, duplicate keys allowed
    (first wins on lookup). Self-describing and greppable — `gridctl
    journal show` prints payloads verbatim. *)

val escape : string -> string
(** Percent-escape ['%'], ['\t'], ['\n'], ['\r'], ['='] and [',']. *)

val unescape : string -> string
(** Inverse of {!escape}; malformed escapes are kept literally. *)

val encode : (string * string) list -> string
val decode : string -> (string * string) list

val field : (string * string) list -> string -> string option
val require : (string * string) list -> string -> (string, string) result
(** [Error] names the missing key. *)

val encode_list : string list -> string
(** Comma-joined with per-item escaping; embeddable as one field value. *)

val decode_list : string -> string list
(** [decode_list ""] is [[]]. *)
