(* Akenti as a GRAM authorization callout.

   The adapter the paper demonstrated at SC02: GRAM's callout API on one
   side, the Akenti engine on the other. When an observer is supplied,
   each engine decision is spanned and counted under source "akenti",
   mirroring the flat-file PEP's instrumentation. *)

type clock = unit -> Grid_sim.Clock.time

let callout ?(obs = Grid_obs.Obs.noop) ~(engine : Engine.t) ~(now : clock) :
    Grid_callout.Callout.t =
 fun query ->
  let request = Grid_callout.Callout.to_policy_request query in
  let decide () = Engine.decide engine ~now:(now ()) request in
  let decision =
    if not (Grid_obs.Obs.enabled obs) then decide ()
    else
      Grid_obs.Obs.with_span obs ~attrs:[ ("source", "akenti") ] "policy.eval" (fun _ ->
          let decision = decide () in
          Grid_obs.Obs.incr obs
            ~labels:
              [ ("source", "akenti");
                ("decision",
                 match decision with Engine.Granted -> "permit" | Engine.Refused _ -> "deny")
              ]
            "policy_eval_total";
          decision)
  in
  match decision with
  | Engine.Granted -> Ok ()
  | Engine.Refused reason -> Error (Grid_callout.Callout.Denied ("Akenti: " ^ reason))
