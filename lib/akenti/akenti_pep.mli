(** Akenti engine adapted to the GRAM authorization callout API. *)

type clock = unit -> Grid_sim.Clock.time

val callout : ?obs:Grid_obs.Obs.t -> engine:Engine.t -> now:clock -> Grid_callout.Callout.t
(** [obs] spans each engine decision as ["policy.eval"] (source
    ["akenti"]) and counts it in [policy_eval_total]. *)
