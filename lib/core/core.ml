(* Public facade: fine-grain authorization for grid resource management.

   Downstream users program against this module. It re-exports the
   subsystem libraries under stable names and provides [Testbed], a
   builder that assembles a complete simulated grid — CA, trust, VO,
   users, GRAM resource with a chosen authorization backend — in a few
   calls. The examples, integration tests and benchmarks are all written
   on top of it. *)

module Util = Grid_util
module Crypto = Grid_crypto
module Sim = Grid_sim
module Gsi = Grid_gsi
module Rsl = Grid_rsl
module Policy = Grid_policy
module Callout = Grid_callout
module Vo = Grid_vo
module Cas = Grid_cas
module Akenti = Grid_akenti
module Lrm = Grid_lrm
module Accounts = Grid_accounts
module Gram = Grid_gram
module Mds = Grid_mds
module Audit = Grid_audit
module Obs = Grid_obs
module Store = Grid_store
module Rebac = Grid_rebac
module Sts = Grid_sts

module Workload = Workload
module Soak = Soak
module Population = Population
module Fleet = Fleet

(** Which policy evaluation point backs the extended GRAM mode. *)
type backend =
  | Baseline
    (** unmodified GT2: gridmap-only authorization, owner-only management *)
  | Flat_file of Grid_policy.Combine.source list
    (** the prototype's plain-text policies (resource owner + VO) *)
  | Rebac of Grid_rebac.Pep.t
    (** the relationship-based (Zanzibar-style) PEP: the same policy
        sources compiled to a tuple graph, decisions at the store's
        head snapshot *)
  | Custom of Grid_callout.Callout.t
    (** any callout (Akenti adapter, CAS PEP, chains, fault injectors) *)

module Testbed = struct
  type t = {
    engine : Grid_sim.Engine.t;
    ca : Grid_gsi.Ca.t;
    trust : Grid_gsi.Ca.Trust_store.store;
    obs : Grid_obs.Obs.t;
    mutable users : (string * Grid_gsi.Identity.t) list;
  }

  (* Fresh world with deterministic ids. The process-global keystore is
     deliberately NOT reset: several worlds can coexist (the benchmark
     harness builds one per backend), and keypair derivation is
     deterministic in the seed material, so re-registration is
     idempotent. *)
  let create ?(ca_name = "/O=Grid/CN=Testbed CA") () =
    Grid_util.Ids.reset ();
    let engine = Grid_sim.Engine.create () in
    let ca = Grid_gsi.Ca.create ~now:(Grid_sim.Engine.now engine) ca_name in
    let trust = Grid_gsi.Ca.Trust_store.create () in
    Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
    { engine; ca; trust; obs = Grid_obs.Obs.of_engine engine; users = [] }

  let engine t = t.engine
  let ca t = t.ca
  let trust t = t.trust
  let obs t = t.obs
  let now t = Grid_sim.Engine.now t.engine

  let add_user t dn_string =
    let identity =
      Grid_gsi.Identity.create ~ca:t.ca ~now:(Grid_sim.Engine.now t.engine) dn_string
    in
    t.users <- (dn_string, identity) :: t.users;
    identity

  let user t dn_string =
    match List.assoc_opt dn_string t.users with
    | Some identity -> identity
    | None -> invalid_arg ("Testbed.user: unknown user " ^ dn_string)

  (* The mode plus, when the backend has one, the policy-epoch source a
     decision cache should invalidate on. *)
  let mode_and_epoch_of_backend ~obs = function
    | Baseline -> (Grid_gram.Mode.Gt2_baseline, None)
    | Flat_file sources ->
      (* Flat-file backends evaluate through the compiled policy index
         and get policy-derived sandboxes for free: the clause the
         decision rested on configures the enforcement envelope
         (DESIGN.md, Section 7 direction). *)
      let pep = Grid_callout.File_pep.Compiled.create ~obs sources in
      ( Grid_gram.Mode.extended_batch ~backend:"flat_file"
          ~advice:(Grid_callout.File_pep.advice sources)
          (Grid_callout.File_pep.Compiled.batch pep),
        Some (fun () -> Grid_callout.File_pep.Compiled.epoch pep) )
    | Rebac pep ->
      ( Grid_gram.Mode.extended_batch ~backend:"rebac" (Grid_rebac.Pep.batch pep),
        Some (fun () -> Grid_rebac.Pep.epoch pep) )
    | Custom authorization -> (Grid_gram.Mode.extended authorization, None)

  let mode_of_backend ~obs backend = fst (mode_and_epoch_of_backend ~obs backend)

  (* Ad-hoc tuple writes under the ReBAC PEP advance the store revision
     without an epoch bump; the decision cache folds it into its keys. *)
  let revision_of_backend = function
    | Rebac pep -> Some (fun () -> Grid_rebac.Pep.revision pep)
    | Baseline | Flat_file _ | Custom _ -> None

  let make_resource ?(name = "resource") ?(nodes = 4) ?(cpus_per_node = 8) ?queues
      ?(gridmap = Grid_gsi.Gridmap.empty) ?dynamic_accounts ?static_limits
      ?dynamic_limits ?gatekeeper_pep ?allocation ?network ?request_timeout
      ?authz_cache ?store ?sts ~backend t =
    let lrm = Grid_lrm.Lrm.create ~obs:t.obs ?queues ~nodes ~cpus_per_node t.engine in
    let pool =
      Option.map
        (fun size ->
          Grid_accounts.Pool.create ~size ~lease_lifetime:(Grid_sim.Clock.hours 8.0) ())
        dynamic_accounts
    in
    let mapper =
      Grid_accounts.Mapper.create ?pool ?static_limits ?dynamic_limits gridmap
    in
    let mode, epoch = mode_and_epoch_of_backend ~obs:t.obs backend in
    let revision = revision_of_backend backend in
    (* Tokenized resource ([?sts]): a validator attached to the service
       plus the token-validating PEP composed outside the backend's batch
       lane — the token gate first, the policy engine's verdict and
       reason unchanged for valid presenters. The baseline mode has no
       callout to gate and is left alone. *)
    let validator =
      Option.map
        (fun s -> Grid_sts.Service.attach_validator s ~obs:t.obs ~name ())
        sts
    in
    let mode =
      match (sts, mode) with
      | None, _ | _, Grid_gram.Mode.Gt2_baseline -> mode
      | Some s, Grid_gram.Mode.Extended { authorization; advice; backend } ->
        Grid_gram.Mode.Extended
          { authorization =
              Grid_sts.Pep.batch ~obs:t.obs ?validator
                ~sts_key:(Grid_sts.Service.public_key s) ~audience:"*"
                ~now:(fun () -> Grid_sim.Engine.now t.engine)
                authorization;
            advice;
            backend }
    in
    let authz_cache =
      Option.map
        (fun capacity ->
          Grid_callout.Cache.create ~capacity ~ttl:(Grid_sim.Clock.minutes 5.0)
            ~obs:t.obs ?epoch ?revision
            ?extra_deadline:
              (Option.map (fun _ -> Grid_sts.Token.credential_deadline) sts)
            ~revoked:(fun cred ->
              List.exists
                (Grid_gsi.Ca.Trust_store.is_revoked t.trust)
                cred.Grid_gsi.Credential.chain)
            ~now:(fun () -> Grid_sim.Engine.now t.engine)
            ())
        authz_cache
    in
    (match (validator, authz_cache) with
    | Some v, Some c ->
      Grid_sts.Validator.on_revocation v (fun ~jti:_ ~subject:_ ->
          Grid_callout.Cache.invalidate c)
    | _ -> ());
    Grid_gram.Resource.create ~name ?gatekeeper_pep ?allocation ?network ?request_timeout
      ?authz_cache ?store ?policy_epoch:epoch ~obs:t.obs ~trust:t.trust ~mapper ~mode
      ~lrm ~engine:t.engine ()

  let client _t ~user ~resource =
    Grid_gram.Client.create ~identity:user ~resource ()

  let run t = Grid_sim.Engine.run t.engine
  let run_for t seconds = Grid_sim.Engine.run_until t.engine (now t +. seconds)
end

(** The National Fusion Collaboratory world of the paper's use case: one
    VO with developer/analyst/admin groups, the Figure 3 members, and a
    resource enforcing resource-owner + VO policy through the flat-file
    PEP. Examples, integration tests and benches share it. *)
module Fusion = struct
  include Fusion_world

  type world = {
    testbed : Testbed.t;
    vo : Grid_vo.Vo.t;
    resource : Grid_gram.Resource.t;
    bo : Grid_gram.Client.t;
    kate : Grid_gram.Client.t;
    vo_admin : Grid_gram.Client.t;
    fleet : Fleet.t option;
    population : Population.t option;
    sts : Grid_sts.Service.t option;
        (** the token service when the world runs tokenized ([?sts]) *)
  }

  let build ?(backend = `Flat_file) ?(rebac = false) ?(nodes = 4) ?(cpus_per_node = 8)
      ?queues ?faults ?(fault_seed = 1299709) ?request_timeout ?flaky_pep ?authz_cache
      ?(store = false) ?snapshot_every ?disk_faults ?fleet ?population
      ?dynamic_accounts ?broker_seed ?sts () =
    (* Token mode: one service with the default permissive relation —
       the policy engines stay the sole deniers, so tokenized worlds are
       differentially comparable to the proxy path. Clients present
       proxies carrying the token as an extension. *)
    let make_sts testbed =
      Option.map
        (fun mode ->
          Grid_sts.Service.create ~name:"fusion-sts" ~mode
            ~engine:(Testbed.engine testbed) ~trust:(Testbed.trust testbed)
            ~obs:(Testbed.obs testbed) ())
        sts
    in
    let tokenize sts_service testbed identity =
      match sts_service with
      | None -> identity
      | Some s -> begin
        match
          Grid_sts.Service.proxy_with_token s ~now:(Testbed.now testbed) identity
        with
        | Ok (proxy, _token) -> proxy
        | Error e ->
          invalid_arg
            ("Fusion.build: token exchange refused: "
            ^ Grid_sts.Service.exchange_error_to_string e)
      end
    in
    match fleet with
    | Some resources ->
      (* Federated variant: [resources] full members behind one MDS. The
         population (when given) contributes its own policy source and a
         dynamic-account pool for its unmapped DNs; the Figure 3 cast
         keeps its static gridmap entries. Only the self-hosted backends
         replicate per member. *)
      if (backend <> `Flat_file && backend <> `Rebac) || Option.is_some flaky_pep
         || Option.is_some snapshot_every || Option.is_some disk_faults
      then
        invalid_arg
          "Fusion.build: a fleet replicates the flat-file or rebac backend only";
      let testbed = Testbed.create () in
      let vo = build_vo () in
      (* Combination is conjunctive with per-source default-deny, so the
         population merges INTO both sources (owner statements into
         resource-owner, community grants into the VO's) — a third
         stand-alone source would deny the Figure 3 cast and vice
         versa. *)
      let sources () =
        match population with
        | None -> policy_sources vo
        | Some p ->
          [ Grid_policy.Combine.source ~name:"resource-owner"
              (resource_owner_policy () @ Population.owner_policy p);
            Grid_policy.Combine.source ~name:(Grid_vo.Vo.name vo)
              (Grid_vo.Vo.compile_policy vo @ Population.policy p) ]
      in
      let dynamic_accounts =
        match (dynamic_accounts, population) with
        | (Some _ as given), _ -> given
        | None, Some p -> Some (min (Population.size p) 8192)
        | None, None -> None
      in
      let sts_service = make_sts testbed in
      let fleet =
        Fleet.create ~resources ~name_prefix:"fusion-site" ~nodes ~cpus_per_node ?queues
          ~gridmap:(Grid_gsi.Gridmap.parse gridmap_text) ?dynamic_accounts
          ~rebac:(rebac || backend = `Rebac) ?authz_cache ~store ?faults ~fault_seed
          ?request_timeout ?seed:broker_seed ?sts:sts_service ~sources
          ~engine:(Testbed.engine testbed) ~trust:(Testbed.trust testbed)
          ~obs:(Testbed.obs testbed) ()
      in
      let resource = Fleet.member_resource (Fleet.member fleet 0) in
      let mk dn =
        Testbed.client testbed
          ~user:(tokenize sts_service testbed (Testbed.add_user testbed dn))
          ~resource
      in
      { testbed;
        vo;
        resource;
        bo = mk bo_liu;
        kate = mk kate_keahey;
        vo_admin = mk admin;
        fleet = Some fleet;
        population;
        sts = sts_service }
    | None ->
    let testbed = Testbed.create () in
    let vo = build_vo () in
    (* The single-resource world enforces the same sources a 1-member
       fleet would: VO + resource-owner policy, with the population
       merged into both (see the fleet branch) — the differential fleet
       suite pins the two paths against each other. *)
    let world_sources () =
      match population with
      | None -> policy_sources vo
      | Some p ->
        [ Grid_policy.Combine.source ~name:"resource-owner"
            (resource_owner_policy () @ Population.owner_policy p);
          Grid_policy.Combine.source ~name:(Grid_vo.Vo.name vo)
            (Grid_vo.Vo.compile_policy vo @ Population.policy p) ]
    in
    (* [~rebac:true] swaps the PEP for the relationship-based backend
       over the same policy sources; decisions are differentially pinned
       to the flat-file PEP's, so the world behaves identically. *)
    let backend = if rebac then `Rebac else backend in
    let backend =
      match (backend, flaky_pep) with
      | `Baseline, _ -> Baseline
      | `Flat_file, None -> Flat_file (world_sources ())
      | `Flat_file, Some failure_probability ->
        (* Chaos variant: the flat-file PEP behind a seeded fault injector.
           No degradation combinator is applied, so backend faults surface
           as Authz_system_failure — refusal, never a silent permit
           (default-deny preserved). *)
        let rng = Grid_util.Rng.create ~seed:(fault_seed + 17) in
        Custom
          (Grid_callout.Callout.flaky ~rng ~failure_probability
             (Grid_callout.File_pep.of_sources ~obs:(Testbed.obs testbed)
                (world_sources ())))
      | `Rebac, None ->
        Rebac (Grid_rebac.Pep.create ~obs:(Testbed.obs testbed) (world_sources ()))
      | `Rebac, Some failure_probability ->
        let rng = Grid_util.Rng.create ~seed:(fault_seed + 17) in
        Custom
          (Grid_callout.Callout.flaky ~rng ~failure_probability
             (Grid_rebac.Pep.of_sources ~obs:(Testbed.obs testbed) (world_sources ())))
      | `Custom callout, None -> Custom callout
      | `Custom callout, Some failure_probability ->
        let rng = Grid_util.Rng.create ~seed:(fault_seed + 17) in
        Custom (Grid_callout.Callout.flaky ~rng ~failure_probability callout)
    in
    let network =
      Option.map
        (fun profile ->
          Grid_sim.Network.create ~faults:profile ~fault_seed (Testbed.engine testbed))
        faults
    in
    (* The durable job-manager store: a simulated disk seeded off the
       fault seed (its own stream, independent of the network's), with
       journal-per-append durability and optional snapshot compaction. *)
    let store =
      if store || Option.is_some snapshot_every || Option.is_some disk_faults then begin
        let disk =
          Grid_sim.Disk.create ?faults:disk_faults ~seed:(fault_seed + 29) ()
        in
        Some
          (Grid_store.Store.create ~obs:(Testbed.obs testbed) ?snapshot_every ~disk
             ~name:"fusion-site" ())
      end
      else None
    in
    let dynamic_accounts =
      match (dynamic_accounts, population) with
      | (Some _ as given), _ -> given
      | None, Some p -> Some (min (Population.size p) 8192)
      | None, None -> None
    in
    let sts_service = make_sts testbed in
    let resource =
      Testbed.make_resource testbed ~name:"fusion-site" ~nodes ~cpus_per_node ?queues
        ~gridmap:(Grid_gsi.Gridmap.parse gridmap_text) ?dynamic_accounts ?network
        ?request_timeout ?authz_cache ?store ?sts:sts_service ~backend
    in
    let mk dn =
      Testbed.client testbed
        ~user:(tokenize sts_service testbed (Testbed.add_user testbed dn))
        ~resource
    in
    { testbed;
      vo;
      resource;
      bo = mk bo_liu;
      kate = mk kate_keahey;
      vo_admin = mk admin;
      fleet = None;
      population;
      sts = sts_service }
end

let version = "1.0.0"
