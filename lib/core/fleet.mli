(** A federated fleet of GRAM resources behind one MDS directory and
    broker: per-member gatekeeper/JMI/LRM/PEP (independent policy
    epochs), optional per-member decision cache and durable store,
    capacity-aware brokered placement, and cross-resource third-party
    management routed to the member that owns the job contact.

    Sits below [Core] — callers supply the engine, trust store and
    observability handle ([Core.Fusion.build ?fleet] assembles the
    standard world). *)

type t

type member
(** One site of the fleet. *)

type submit_error =
  | Unplaceable  (** discovery produced no usable candidate *)
  | Rejected of string  (** the RSL did not parse *)
  | Site_error of string * Grid_gram.Protocol.submit_error
      (** a site answered; the fall-through stops — even on a denial *)
  | Unreachable of (string * Grid_gram.Protocol.submit_error) list
      (** every ranked candidate timed out *)

val submit_error_to_string : submit_error -> string

val create :
  ?resources:int ->
  ?name_prefix:string ->
  ?nodes:int ->
  ?cpus_per_node:int ->
  ?queues:Grid_lrm.Lrm.queue_config list ->
  ?gridmap:Grid_gsi.Gridmap.t ->
  ?dynamic_accounts:int ->
  ?rebac:bool ->
  ?authz_cache:int ->
  ?store:bool ->
  ?faults:Grid_sim.Network.Faults.profile ->
  ?fault_seed:int ->
  ?request_timeout:float ->
  ?precheck:(Grid_policy.Types.request -> bool) ->
  ?seed:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?directory_ttl:Grid_sim.Clock.time ->
  ?provider_period:Grid_sim.Clock.time ->
  ?sts:Grid_sts.Service.t ->
  sources:(unit -> Grid_policy.Combine.source list) ->
  engine:Grid_sim.Engine.t ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  obs:Grid_obs.Obs.t ->
  unit ->
  t
(** [resources] members (default 4) named ["<name_prefix>-<i>"]. Every
    member compiles its own policy index from [sources ()] (flat-file,
    or ReBAC with [~rebac:true]) so epochs advance independently;
    {!reload_member} re-pulls [sources] for one member. [authz_cache]
    gives each member a decision cache of that capacity; [store] a
    durable job-manager store on its own seeded disk; [faults] a
    fault-injected network with an independent per-member stream derived
    from [fault_seed]. [seed] fixes the broker's tie-break ranking.
    [sts] runs the fleet tokenized: each member gates its policy engine
    behind a token-validating PEP ({!Grid_sts.Pep}) with its own
    attached validator, member caches cap entry deadlines at the carried
    token's [not_after], and an applied revocation flushes the owning
    member's cache. Raises [Invalid_argument] when [resources < 1]. *)

(** {1 Topology} *)

val size : t -> int
val members : t -> member list
val member : t -> int -> member
val member_named : t -> string -> member option
val directory : t -> Grid_mds.Directory.t
val broker : t -> Grid_mds.Broker.t
val engine : t -> Grid_sim.Engine.t
val seed : t -> int

val member_name : member -> string
val member_resource : member -> Grid_gram.Resource.t
val member_cache : member -> Grid_callout.Cache.t option
val member_store : member -> Grid_store.Store.t option

val member_validator : member -> Grid_sts.Validator.t option
(** The member's token-revocation view when the fleet runs tokenized
    ([Fleet.create ?sts]). *)

val member_epoch : member -> int
(** The member's current policy epoch. *)

val member_publications : member -> int

val routed_jobs : t -> int
(** Live entries in the contact routing table (trimmed on terminal job
    events, so O(live jobs)). *)

(** {1 Placement} *)

val submit_sync :
  t ->
  identity:Grid_gsi.Identity.t ->
  rsl:string ->
  (string * Grid_gram.Protocol.submit_reply, Grid_mds.Broker.error) result
(** Brokered synchronous placement (drives the engine — use from outside
    the simulation only). Returns the winning site and reply, and
    records the contact route. *)

val submit :
  t ->
  identity:Grid_gsi.Identity.t ->
  rsl:string ->
  reply:((string * Grid_gram.Protocol.submit_reply, submit_error) result -> unit) ->
  unit
(** Asynchronous placement, safe inside engine callbacks: candidates are
    ranked by the broker's pure selection, then tried over the network in
    order. A timeout feeds the site's breaker and falls through to the
    next candidate; any answer (including a denial) stops the
    fall-through. *)

(** {1 Cross-resource management} *)

val locate : t -> contact:string -> member option
(** The member owning a job contact: routing table first, then a probe
    of members' JMI tables (covers restored jobs and out-of-band
    submissions). *)

val manage :
  ?timeout:float ->
  ?credential_for:(Grid_gram.Resource.t -> Grid_gsi.Credential.t option) ->
  t ->
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  contact:string ->
  Grid_gram.Protocol.management_action ->
  reply:
    ((Grid_gram.Protocol.management_reply, Grid_gram.Protocol.management_error) result ->
    unit) ->
  unit
(** Route the request to the owning member and manage over its network;
    [Unknown_job] when no member owns the contact. The owning member's
    PEP decides — a jobtag granted at one site authorizes management of
    tagged jobs at every site. Challenges are per-gatekeeper, so when no
    [credential] is given, [credential_for] can mint one against the
    located member's resource (the tokenized workload's path). *)

val manage_sync :
  t ->
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  contact:string ->
  Grid_gram.Protocol.management_action ->
  (Grid_gram.Protocol.management_reply, Grid_gram.Protocol.management_error) result
(** In-process routed management (the owning member's direct lane). *)

val manage_many :
  ?credential_for:
    (Grid_gram.Resource.t ->
    Grid_gram.Resource.manage_request ->
    Grid_gsi.Credential.t option) ->
  t ->
  Grid_gram.Resource.manage_request array ->
  (Grid_gram.Protocol.management_reply, Grid_gram.Protocol.management_error) result array
(** Batched routed management: requests grouped by owning member, each
    group authorized through that member's batch lane; results in
    request order. Unroutable contacts answer [Unknown_job].
    [credential_for] fills a credential-less request once its owning
    member is known (see {!manage}). *)

(** {1 Operations} *)

val reload_member : t -> int -> int
(** Re-pull [sources] into member [i]'s PEP; returns the new epoch. *)

val reload : t -> unit
(** {!reload_member} for every member. *)

val crash_member : t -> int -> unit
val recover_member : t -> int -> Grid_gram.Resource.recovery_summary

val refresh : t -> unit
(** Force an immediate out-of-band publication from every provider. *)

val quiesce : t -> unit
(** Stop every provider's publish loop so [Engine.run] can settle the
    remaining work and terminate. *)
