(* A federated fleet of GRAM-managed resources behind one MDS.

   Each member is a full site: its own gatekeeper, job managers, LRM,
   policy evaluation point (flat-file or ReBAC) with an independent
   policy epoch, optional decision cache, and optional durable store.
   Every member publishes into a shared [Mds.Directory] through an
   information provider, and clients place work through a shared
   [Mds.Broker] — capacity- and queue-aware, seeded tie-breaking,
   per-site circuit breakers.

   Cross-resource third-party management is the point of the exercise:
   a jobtag granted by the VO policy authorizes cancel/signal on ANY
   member's jobs carrying that tag, so a management request must first
   be routed to the member that owns the contact. The fleet keeps a
   contact -> member route table (fed by submissions, trimmed on
   terminal job events so it stays O(live jobs)) and falls back to
   probing members' JMI tables for contacts it has never seen — e.g.
   jobs submitted behind the fleet's back or restored after a crash.

   Layering note: this module sits below [Core] (it compiles first), so
   it cannot use [Testbed]; callers hand it the engine, trust store and
   observability handle explicitly. [Core.Fusion.build ?fleet] does the
   assembly for the standard world. *)

type member = {
  index : int;
  name : string;
  resource : Grid_gram.Resource.t;
  provider : Grid_mds.Provider.t;
  epoch : unit -> int;
  reload_sources : Grid_policy.Combine.source list -> unit;
  cache : Grid_callout.Cache.t option;
  store : Grid_store.Store.t option;
  validator : Grid_sts.Validator.t option;
      (* the member's revocation view when the fleet runs tokenized *)
}

type t = {
  engine : Grid_sim.Engine.t;
  obs : Grid_obs.Obs.t;
  directory : Grid_mds.Directory.t;
  broker : Grid_mds.Broker.t;
  members : member array;
  (* contact -> member name; the authoritative owner of a live job *)
  routes : (string, string) Hashtbl.t;
  sources : unit -> Grid_policy.Combine.source list;
  seed : int;
}

type submit_error =
  | Unplaceable  (** discovery produced no usable candidate *)
  | Rejected of string  (** the RSL did not parse *)
  | Site_error of string * Grid_gram.Protocol.submit_error
      (** a site answered — the job's problem, not the fleet's *)
  | Unreachable of (string * Grid_gram.Protocol.submit_error) list
      (** every ranked candidate timed out *)

let submit_error_to_string = function
  | Unplaceable -> "no resource matches the request"
  | Rejected e -> "RSL rejected: " ^ e
  | Site_error (site, e) ->
    Printf.sprintf "%s: %s" site (Grid_gram.Protocol.submit_error_to_string e)
  | Unreachable timeouts ->
    "no candidate reachable:\n"
    ^ Grid_util.Strings.concat_map "\n"
        (fun (site, e) ->
          Printf.sprintf "  %s: %s" site (Grid_gram.Protocol.submit_error_to_string e))
        timeouts

(* One member's policy evaluation point. Mirrors
   [Testbed.mode_and_epoch_of_backend] for the two self-hosted backends;
   each member compiles its own index so epochs advance independently.
   [wrap] composes an outer gate around the batch lane before it becomes
   the mode — the token-validating PEP plugs in here, so the gate and
   the policy engine reload/epoch machinery stay independent. *)
let backend_for ~obs ?(wrap = fun batch -> batch) ~rebac sources =
  if rebac then begin
    let pep = Grid_rebac.Pep.create ~obs sources in
    ( Grid_gram.Mode.extended_batch ~backend:"rebac" (wrap (Grid_rebac.Pep.batch pep)),
      (fun () -> Grid_rebac.Pep.epoch pep),
      Some (fun () -> Grid_rebac.Pep.revision pep),
      Grid_rebac.Pep.reload pep )
  end
  else begin
    let pep = Grid_callout.File_pep.Compiled.create ~obs sources in
    ( Grid_gram.Mode.extended_batch ~backend:"flat_file"
        ~advice:(Grid_callout.File_pep.advice sources)
        (wrap (Grid_callout.File_pep.Compiled.batch pep)),
      (fun () -> Grid_callout.File_pep.Compiled.epoch pep),
      None,
      Grid_callout.File_pep.Compiled.reload pep )
  end

let create ?(resources = 4) ?(name_prefix = "site") ?(nodes = 4) ?(cpus_per_node = 8)
    ?queues ?(gridmap = Grid_gsi.Gridmap.empty) ?dynamic_accounts ?(rebac = false)
    ?authz_cache ?(store = false) ?faults ?(fault_seed = 1299709) ?request_timeout
    ?precheck ?(seed = 0) ?breaker_threshold ?breaker_cooldown ?directory_ttl
    ?(provider_period = 30.0) ?sts ~sources ~engine ~trust ~obs () =
  if resources < 1 then invalid_arg "Fleet.create: resources must be >= 1";
  let directory = Grid_mds.Directory.create ?ttl:directory_ttl engine in
  let member i =
    let name = Printf.sprintf "%s-%d" name_prefix i in
    (* The member's whole stack records through a resource-scoped handle:
       every event and metric it emits carries [resource=<name>], which
       is what lets the safety monitor judge epoch freshness per member
       and the metrics dashboard break the fleet down by site. *)
    let obs = Grid_obs.Obs.scoped obs [ ("resource", name) ] in
    let lrm = Grid_lrm.Lrm.create ~obs ?queues ~nodes ~cpus_per_node engine in
    let pool =
      Option.map
        (fun size ->
          Grid_accounts.Pool.create ~size ~lease_lifetime:(Grid_sim.Clock.hours 8.0) ())
        dynamic_accounts
    in
    let mapper = Grid_accounts.Mapper.create ?pool gridmap in
    (* Tokenized fleet: every member validates tokens against its own
       revocation view (fed per the service's distribution mode) before
       its policy engine sees the query. *)
    let validator =
      Option.map (fun s -> Grid_sts.Service.attach_validator s ~obs ~name ()) sts
    in
    let wrap =
      Option.map
        (fun s ->
          Grid_sts.Pep.batch ~obs ?validator
            ~sts_key:(Grid_sts.Service.public_key s) ~audience:"*"
            ~now:(fun () -> Grid_sim.Engine.now engine))
        sts
    in
    let mode, epoch, revision, reload_sources =
      backend_for ~obs ?wrap ~rebac (sources ())
    in
    let cache =
      Option.map
        (fun capacity ->
          Grid_callout.Cache.create ~capacity ~ttl:(Grid_sim.Clock.minutes 5.0) ~obs
            ~epoch ?revision
            ?extra_deadline:
              (Option.map (fun _ -> Grid_sts.Token.credential_deadline) sts)
            ~revoked:(fun cred ->
              List.exists
                (Grid_gsi.Ca.Trust_store.is_revoked trust)
                cred.Grid_gsi.Credential.chain)
            ~now:(fun () -> Grid_sim.Engine.now engine)
            ())
        authz_cache
    in
    (* A cached permit never outlives a revoked jti: the validator's
       apply hook flushes this member's decision cache. *)
    (match (validator, cache) with
    | Some v, Some c ->
      Grid_sts.Validator.on_revocation v (fun ~jti:_ ~subject:_ ->
          Grid_callout.Cache.invalidate c)
    | _ -> ());
    let network =
      (* Only fault-injected members need their own network; each gets an
         independent fault stream so one seed partitions members
         differently. *)
      Option.map
        (fun profile ->
          Grid_sim.Network.create ~faults:profile ~fault_seed:(fault_seed + (31 * i))
            engine)
        faults
    in
    let store =
      if store then begin
        let disk = Grid_sim.Disk.create ~seed:(fault_seed + 29 + (101 * i)) () in
        Some (Grid_store.Store.create ~obs ~disk ~name ())
      end
      else None
    in
    let resource =
      Grid_gram.Resource.create ~name ?network ?request_timeout
        ?authz_cache:cache ?store ~policy_epoch:epoch ~obs ~trust ~mapper ~mode ~lrm
        ~engine ()
    in
    let provider =
      Grid_mds.Provider.attach ~period:provider_period ~site:name ~directory resource
    in
    { index = i; name; resource; provider; epoch; reload_sources; cache; store;
      validator }
  in
  let members = Array.init resources member in
  let broker =
    Grid_mds.Broker.create ?precheck ~seed ?breaker_threshold ?breaker_cooldown ~obs
      ~directory
      (Array.to_list (Array.map (fun m -> m.resource) members))
  in
  let routes = Hashtbl.create 256 in
  (* Trim routes when jobs reach a terminal state, keeping the table
     O(live jobs) even under population-scale workloads. *)
  if Grid_obs.Obs.enabled obs then
    Grid_obs.Event.subscribe (Grid_obs.Obs.events obs) (fun e ->
        if e.Grid_obs.Event.kind = "job.terminal" then
          match List.assoc_opt "contact" e.Grid_obs.Event.attrs with
          | Some contact -> Hashtbl.remove routes contact
          | None -> ());
  { engine; obs; directory; broker; members; routes; sources; seed }

let size t = Array.length t.members
let members t = Array.to_list t.members
let member t i = t.members.(i)
let directory t = t.directory
let broker t = t.broker
let engine t = t.engine
let seed t = t.seed

let member_named t name =
  let found = ref None in
  Array.iter (fun m -> if m.name = name then found := Some m) t.members;
  !found

let member_name m = m.name
let member_resource m = m.resource
let member_cache m = m.cache
let member_store m = m.store
let member_validator m = m.validator
let member_epoch m = m.epoch ()
let member_publications m = Grid_mds.Provider.publications m.provider

let routed_jobs t = Hashtbl.length t.routes

let count t ?(by = 1.0) ~labels name =
  if Grid_obs.Obs.enabled t.obs then Grid_obs.Obs.incr t.obs ~by ~labels name

let record_route t m contact =
  Hashtbl.replace t.routes contact m.name

(* Find the member that owns a contact: the route table first, then a
   probe across JMI tables (restored jobs, out-of-band submissions). *)
let locate t ~contact =
  let resolved =
    match Hashtbl.find_opt t.routes contact with
    | Some name -> member_named t name
    | None -> None
  in
  match resolved with
  | Some m -> Some m
  | None ->
    let found = ref None in
    Array.iter
      (fun m ->
        if !found = None && Option.is_some (Grid_gram.Resource.find_jmi m.resource contact)
        then begin
          record_route t m contact;
          found := Some m
        end)
      t.members;
    !found

(* Synchronous placement: the broker's engine-pumping path. Usable from
   outside the simulation only (it drives the engine to completion). *)
let submit_sync t ~identity ~rsl =
  match Grid_mds.Broker.submit t.broker ~identity ~rsl with
  | Error _ as e -> e
  | Ok (site, reply) ->
    (match member_named t site with
    | Some m -> record_route t m reply.Grid_gram.Protocol.job_contact
    | None -> ());
    Ok (site, reply)

(* Asynchronous placement: usable from inside engine callbacks (workload
   arrival events). Ranks candidates through the broker's pure [select],
   then tries them in order over the network; a timeout falls through to
   the next candidate and feeds that site's breaker, any answer — even a
   denial — stops the fall-through (the job's problem, not the
   fleet's). *)
let submit t ~identity ~rsl ~reply =
  match Grid_rsl.Job.of_string rsl with
  | Error e -> reply (Error (Rejected (Grid_rsl.Job.error_to_string e)))
  | Ok job -> begin
    match Grid_mds.Broker.select t.broker ~job with
    | [] -> reply (Error Unplaceable)
    | candidates ->
      let rec attempt timeouts = function
        | [] -> reply (Error (Unreachable (List.rev timeouts)))
        | resource :: rest ->
          let site = Grid_gram.Resource.name resource in
          let credential =
            Grid_gsi.Credential.of_identity identity
              ~challenge:(Grid_gram.Resource.new_challenge resource)
          in
          Grid_gram.Resource.submit resource ~credential ~rsl ~reply:(function
            | Error (Grid_gram.Protocol.Request_timeout _ as e) ->
              Grid_mds.Broker.observe t.broker ~site `Timeout;
              count t ~labels:[ ("resource", site); ("outcome", "timeout") ]
                "fleet_submissions_total";
              attempt ((site, e) :: timeouts) rest
            | Ok r ->
              Grid_mds.Broker.observe t.broker ~site `Answered;
              (match member_named t site with
              | Some m -> record_route t m r.Grid_gram.Protocol.job_contact
              | None -> ());
              count t ~labels:[ ("resource", site); ("outcome", "accepted") ]
                "fleet_submissions_total";
              reply (Ok (site, r))
            | Error e ->
              Grid_mds.Broker.observe t.broker ~site `Answered;
              count t ~labels:[ ("resource", site); ("outcome", "refused") ]
                "fleet_submissions_total";
              reply (Error (Site_error (site, e))))
      in
      attempt [] candidates
  end

(* Routed third-party management: any member's jobtag grant works
   against any member's jobs — the fleet finds the owner, the owner's
   PEP decides. Challenges are per-gatekeeper, so a caller that wants a
   credential on the request but cannot know the owner up front (e.g. a
   tokenized population workload) supplies [credential_for], which mints
   one against the located member's resource. *)
let manage ?timeout ?credential_for t ~requester ?credential ~contact action ~reply =
  match locate t ~contact with
  | None -> reply (Error (Grid_gram.Protocol.Unknown_job contact))
  | Some m ->
    count t ~labels:[ ("resource", m.name) ] "fleet_management_routed_total";
    let credential =
      match (credential, credential_for) with
      | (Some _ as c), _ | c, None -> c
      | None, Some mint -> mint m.resource
    in
    Grid_gram.Resource.manage ?timeout m.resource ~requester ?credential ~contact action
      ~reply

let manage_sync t ~requester ?credential ~contact action =
  match locate t ~contact with
  | None -> Error (Grid_gram.Protocol.Unknown_job contact)
  | Some m ->
    count t ~labels:[ ("resource", m.name) ] "fleet_management_routed_total";
    Grid_gram.Resource.manage_direct m.resource ~requester ?credential ~contact action

(* Batched management across the fleet: requests are grouped by owning
   member (members in index order, requests in arrival order within each
   group) and each group goes through that member's batch lane; results
   come back in request order. *)
let manage_many ?credential_for t (requests : Grid_gram.Resource.manage_request array) =
  let n = Array.length requests in
  let results =
    Array.make n (Error (Grid_gram.Protocol.Unknown_job "unrouted") : _ result)
  in
  let buckets = Hashtbl.create (Array.length t.members) in
  Array.iteri
    (fun i (r : Grid_gram.Resource.manage_request) ->
      match locate t ~contact:r.Grid_gram.Resource.contact with
      | None ->
        results.(i) <- Error (Grid_gram.Protocol.Unknown_job r.Grid_gram.Resource.contact)
      | Some m ->
        let tail = try Hashtbl.find buckets m.name with Not_found -> [] in
        Hashtbl.replace buckets m.name ((i, r) :: tail))
    requests;
  Array.iter
    (fun m ->
      match Hashtbl.find_opt buckets m.name with
      | None -> ()
      | Some pairs ->
        let pairs = Array.of_list (List.rev pairs) in
        count t
          ~by:(float_of_int (Array.length pairs))
          ~labels:[ ("resource", m.name) ]
          "fleet_management_routed_total";
        let group = Array.map snd pairs in
        let group =
          match credential_for with
          | None -> group
          | Some mint ->
            Array.map
              (fun (r : Grid_gram.Resource.manage_request) ->
                match r.Grid_gram.Resource.credential with
                | Some _ -> r
                | None -> { r with credential = mint m.resource r })
              group
        in
        let replies = Grid_gram.Resource.manage_many_direct m.resource group in
        Array.iteri (fun k (i, _) -> results.(i) <- replies.(k)) pairs)
    t.members;
  results

let reload_member t i =
  let m = t.members.(i) in
  m.reload_sources (t.sources ());
  m.epoch ()

let reload t = Array.iteri (fun i _ -> ignore (reload_member t i)) t.members

let crash_member t i = Grid_gram.Resource.crash t.members.(i).resource
let recover_member t i = Grid_gram.Resource.recover t.members.(i).resource

let refresh t =
  Array.iter (fun m -> Grid_mds.Provider.publish_now m.provider) t.members

(* Stop the publish loops so [Engine.run] can settle in-flight work and
   terminate — self-rescheduling providers (and pull-mode token
   validators) otherwise keep the event queue non-empty forever. *)
let quiesce t =
  Array.iter
    (fun m ->
      Grid_mds.Provider.stop m.provider;
      Option.iter Grid_sts.Validator.stop m.validator)
    t.members
