(* The National Fusion Collaboratory cast and policies, shared by the
   [Core.Fusion] builder, the workload generator and the soak campaigns:
   one VO with developer/analyst/admin groups, the Figure 3 members, and
   the resource-owner + VO policy sources the flat-file PEP compiles. *)

let organization = Grid_policy.Figure3.organization
let bo_liu = Grid_policy.Figure3.bo_liu
let kate_keahey = Grid_policy.Figure3.kate_keahey
let admin = organization ^ "/CN=VO Admin"
let outsider = "/O=Grid/O=Globus/OU=cs.wisc.edu/CN=Outsider"

let build_vo () =
  let vo = Grid_vo.Vo.create ~member_prefix:organization "fusion-vo" in
  Grid_vo.Vo.register_jobtag vo "NFC";
  Grid_vo.Vo.register_jobtag vo "ADS";
  Grid_vo.Vo.register_jobtag vo "DEMO";
  Grid_vo.Vo.require_jobtag vo;
  Grid_vo.Vo.add_profile vo
    (Grid_vo.Profile.make "developers"
       ~start_rules:
         [ Grid_vo.Profile.start_rule ~directory:"/sandbox/test" ~jobtag:"ADS"
             ~max_count:4 [ "test1"; "test2"; "compiler"; "debugger" ] ]);
  Grid_vo.Vo.add_profile vo
    (Grid_vo.Profile.make "analysts"
       ~start_rules:
         [ Grid_vo.Profile.start_rule ~directory:"/sandbox/test" ~jobtag:"NFC"
             [ "TRANSP" ] ]);
  Grid_vo.Vo.add_profile vo
    (Grid_vo.Profile.make "admins" ~manage_tags:[ "NFC"; "ADS"; "DEMO" ]
       ~start_rules:
         [ Grid_vo.Profile.start_rule ~directory:"/sandbox/test" ~jobtag:"DEMO"
             [ "TRANSP"; "demo" ] ]);
  Grid_vo.Vo.add_member vo ~dn:bo_liu ~groups:[ "developers" ];
  Grid_vo.Vo.add_member vo ~dn:kate_keahey ~groups:[ "analysts"; "admins" ];
  Grid_vo.Vo.add_member vo ~dn:admin ~groups:[ "admins" ];
  vo

let resource_owner_policy_text =
  {|# resource owner: fusion VO members may compute, but never on the
# reserved queue; management is open to policy (the VO decides details).
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = start)(queue != reserved)
/O=Grid/O=Globus/OU=mcs.anl.gov: &(action = cancel) &(action = information) &(action = signal)|}

let resource_owner_policy () = Grid_policy.Parse.parse resource_owner_policy_text

let policy_sources vo =
  [ Grid_policy.Combine.source ~name:"resource-owner" (resource_owner_policy ());
    Grid_vo.Vo.policy_source vo ]

let gridmap_text =
  Printf.sprintf "%S bliu\n%S keahey\n%S voadmin\n" bo_liu kate_keahey admin
