(* Multi-day soak campaigns under chaos, watched by the safety monitor.

   A campaign drives the fusion testbed through several simulated days of
   realistic operational churn — credential expiry and renewal, a CRL
   revocation mid-flight, VO/policy reloads that bump the policy epoch,
   job-manager crashes during submission bursts, and network/disk fault
   injection — while the online safety monitor ([Grid_obs.Monitor])
   checks every wide event against the paper's enforcement invariants.

   The campaign driver owns what the monitor deliberately does not: the
   policy. It keeps a history of (epoch, policy sources) snapshots and
   injects an oracle that re-derives the flat-file PEP's answer for the
   epoch stamped on each decision event, so buffered events that flush
   after a churn are still judged against the policy they were actually
   decided under.

   [--inject-violation] is the monitor's self-test: each violation class
   can be provoked on demand — default-deny by really mis-wiring the
   callout (one denial is flipped to a permit mid-campaign, under the
   real request's correlation id), the other four by synthesizing event
   chains the instrumentation would emit if the corresponding bug
   existed. A campaign that cannot detect its own injected violations
   proves nothing about a clean run. *)

type fault_level =
  | No_faults
  | Light
  | Heavy

let fault_level_to_string = function
  | No_faults -> "none"
  | Light -> "light"
  | Heavy -> "heavy"

type pep_backend =
  | Flat_file_pep
  | Rebac_pep

let pep_backend_to_string = function
  | Flat_file_pep -> "flat_file"
  | Rebac_pep -> "rebac"

type config = {
  days : float;                (* campaign length in simulated days *)
  jobs_per_day : int;          (* baseline Poisson arrival volume *)
  seed : int;                  (* drives arrivals, faults and choices *)
  faults : fault_level;        (* network (and, when heavy, disk) chaos *)
  monitor : bool;              (* false: measure the monitor's absence *)
  inject : Grid_obs.Monitor.violation_class option;
  propagation_window : float;  (* revocation grace period, seconds *)
  pep : pep_backend;           (* which PEP answers the callouts *)
  batch : int;                 (* 1 = per-request management over the wire;
                                  N > 1 coalesces follow-ups and authorizes
                                  them through the batch decision pipeline *)
  resources : int;             (* 1 = the original single-site campaign;
                                  N > 1 federates N members behind an MDS
                                  directory and broker, with staggered
                                  reloads and rotating crash targets *)
  tokens : Grid_sts.Validator.mode option;
                               (* None = the original proxy-path campaign.
                                  Some mode routes every request through
                                  STS tokens: proxies carry a token
                                  extension, a per-member token-validating
                                  PEP gates the callout, renewal becomes
                                  refresh-before-expiry against the STS
                                  escrow, and the mid-campaign revocation
                                  lands at the STS (distributed per the
                                  mode) instead of the CA trust store. *)
}

let default_config =
  { days = 3.0;
    jobs_per_day = 400;
    seed = 42;
    faults = Light;
    monitor = true;
    inject = None;
    propagation_window = 300.0;
    pep = Flat_file_pep;
    batch = 1;
    resources = 1;
    tokens = None }

type report = {
  submitted : int;
  accepted : int;
  denied : int;          (* authorization / authentication refusals *)
  failed : int;          (* other errors: RSL, mapping, system *)
  timed_out : int;
  management : int;
  management_denied : int;
  renewals : int;
  revocations : int;
  reloads : int;
  crashes : int;
  jobs_restored : int;
  events_checked : int;
  final_epoch : int option;
  violations : Grid_obs.Monitor.violation list;
}

(* --- Fault profiles (mirroring gridctl's named levels) ----------------- *)

let network_faults = function
  | No_faults -> None
  | Light ->
    Some
      (Grid_sim.Network.Faults.profile ~drop:0.01 ~duplicate:0.005
         ~delay_probability:0.05 ~max_extra_delay:0.02 ())
  | Heavy ->
    Some
      (Grid_sim.Network.Faults.profile ~drop:0.05 ~duplicate:0.02
         ~delay_probability:0.2 ~max_extra_delay:0.1 ())

let disk_faults = function
  | No_faults | Light -> None
  | Heavy ->
    Some
      (Grid_sim.Disk.Faults.profile ~torn_write:0.3 ~fsync_latency:0.002
         ~fsync_jitter:0.003 ())

(* --- The policy oracle -------------------------------------------------- *)

(* Rebuild a policy request from a decision event's attributes. The
   attrs carry everything [Callout.to_policy_request] would have seen. *)
let request_of_event (e : Grid_obs.Event.t) : Grid_policy.Types.request option =
  let attr = Grid_obs.Event.attr e in
  try
    match (attr "subject", Option.bind (attr "action") Grid_policy.Types.Action.of_string) with
    | Some subject, Some action ->
      Some
        { Grid_policy.Types.subject = Grid_gsi.Dn.parse subject;
          action;
          job = Option.map Grid_rsl.Parser.parse_clause_exn (attr "rsl");
          jobowner = Option.map Grid_gsi.Dn.parse (attr "jobowner");
          jobtag = attr "jobtag" }
    | _ -> None
  with _ -> None

(* The campaign's policy history: for each epoch a PEP announced, a
   closure re-deriving the policy answer from the engine that was live
   at that epoch. Flat-file epochs re-evaluate the compiled sources;
   ReBAC epochs re-expand the tuple graph of the plan compiled at the
   reload. Either way a decision event that flushes after a churn is
   judged against the policy it was actually decided under, not
   today's. *)
type answerer = Grid_policy.Types.request -> bool option

let flat_file_answerer sources : answerer =
  let compiled = Grid_policy.Combine.compile_sources sources in
  fun request ->
    Some (Grid_policy.Combine.is_permit (Grid_policy.Combine.evaluate_compiled compiled request))

let rebac_answerer sources : answerer =
  let plan = Grid_rebac.Compile.of_sources sources in
  let store = Grid_rebac.Compile.load plan in
  fun request ->
    match Grid_rebac.Compile.decide plan store request with
    | Ok decision -> Some (Grid_policy.Combine.is_permit decision)
    | Error _ -> None (* expansion failure: indeterminate, not a verdict *)

(* One oracle body shared by every backend; [Monitor.oracle_for_backend]
   scopes it to the decision events the campaign's PEP actually stamps.
   Verdicts are memoized on the raw (epoch, request attrs) — the policy
   at a given epoch is an immutable snapshot, so a repeated question has
   a fixed answer and the workload's few templates repeat constantly. *)
let make_oracle (history : (int * answerer) list ref) : Grid_obs.Monitor.oracle =
  let memo : (string, bool option) Hashtbl.t = Hashtbl.create 4096 in
  fun (e : Grid_obs.Event.t) ->
    match Grid_obs.Event.attr_int e "epoch" with
    | None -> None
    | Some epoch ->
      let field k = Option.value ~default:"" (Grid_obs.Event.attr e k) in
      let key =
        String.concat "\x00"
          [ string_of_int epoch; field "subject"; field "action"; field "rsl";
            field "jobowner"; field "jobtag" ]
      in
      (match Hashtbl.find_opt memo key with
      | Some verdict -> verdict
      | None -> begin
        match List.assoc_opt epoch !history with
        | None -> None (* not memoized: the epoch may land in history later *)
        | Some answer ->
          let verdict = Option.bind (request_of_event e) answer in
          Hashtbl.add memo key verdict;
          verdict
      end)

(* The composite the monitor gets: the same history-backed oracle, once
   per backend label a PEP in this campaign can stamp on decisions. *)
let campaign_oracle history : Grid_obs.Monitor.oracle =
  let oracle = make_oracle history in
  Grid_obs.Monitor.any_oracle
    [ Grid_obs.Monitor.oracle_for_backend "flat_file" oracle;
      Grid_obs.Monitor.oracle_for_backend "rebac" oracle ]

(* --- The campaign ------------------------------------------------------- *)

let mallory = Fusion_world.organization ^ "/CN=Mallory Mallone"

let gridmap_text =
  Fusion_world.gridmap_text ^ Printf.sprintf "%S mallory\n" mallory

type user_cell = {
  dn : string;
  base : Grid_gsi.Identity.t;
  mutable proxy : Grid_gsi.Identity.t;
  weight : int;
  templates : string list;
}

let run (config : config) : report =
  if config.days <= 0.0 then invalid_arg "Soak.run: days must be positive";
  if config.jobs_per_day <= 0 then invalid_arg "Soak.run: jobs_per_day must be positive";
  if config.batch < 1 then invalid_arg "Soak.run: batch must be >= 1";
  if config.resources < 1 then invalid_arg "Soak.run: resources must be >= 1";
  let total = Grid_sim.Clock.days config.days in
  Grid_util.Ids.reset ();
  let engine = Grid_sim.Engine.create () in
  (* Long-lived CA and end-entity certs spanning the whole campaign; only
     the 12-hour proxies expire and are renewed — the operational shape
     the expired-credential invariant is about. *)
  let ca =
    Grid_gsi.Ca.create
      ~lifetime:(total +. Grid_sim.Clock.days 7.0)
      ~default_identity_lifetime:(total +. Grid_sim.Clock.days 1.0)
      ~now:(Grid_sim.Engine.now engine) "/O=Grid/CN=Soak CA"
  in
  let trust = Grid_gsi.Ca.Trust_store.create () in
  Grid_gsi.Ca.Trust_store.add trust (Grid_gsi.Ca.certificate ca);
  let obs = Grid_obs.Obs.of_engine engine in
  let rng = Grid_util.Rng.create ~seed:config.seed in

  (* The STS, when the campaign runs tokenized. One default permissive
     relation: the policy engine stays the sole denier, which is what
     makes token-world decisions differentially comparable to the proxy
     path. *)
  let sts =
    Option.map
      (fun mode ->
        Grid_sts.Service.create ~name:"soak-sts" ~mode ~engine ~trust ~obs ())
      config.tokens
  in

  (* Policy history for the oracle; the monitor subscribes before the PEP
     exists so it also sees the create-epoch event. The grace period it
     grants revocations must cover the token layer's own enforcement
     bound — in short-TTL mode a pre-revocation token is legitimately
     accepted until it expires, so judging it against a tighter window
     would manufacture violations out of correct behaviour. *)
  let monitor_window =
    match sts with
    | None -> config.propagation_window
    | Some s ->
      Float.max config.propagation_window (Grid_sts.Service.propagation_window s)
  in
  let history : (int * answerer) list ref = ref [] in
  let monitor =
    if config.monitor then
      Some
        (Grid_obs.Monitor.create ~oracle:(campaign_oracle history)
           ~propagation_window:monitor_window
           (Grid_obs.Obs.events obs))
    else None
  in

  let vo = Fusion_world.build_vo () in
  Grid_vo.Vo.add_member vo ~dn:mallory ~groups:[ "analysts" ];
  let sources () = Fusion_world.policy_sources vo in
  let initial_sources = sources () in
  (* The configured PEP behind a uniform handle: callout, epoch source,
     reload. The oracle side is symmetric — [answerer_for] snapshots the
     sources into a closure the monitor can re-derive answers from. *)
  let answerer_for =
    match config.pep with
    | Flat_file_pep -> flat_file_answerer
    | Rebac_pep -> rebac_answerer
  in
  let backend_label = pep_backend_to_string config.pep in

  (* Default-deny mis-wiring: while armed, the next Denied answer from a
     real PEP is flipped to a permit — under the live request's
     correlation id, exactly the bug class the monitor must catch. *)
  let flip_next_denial = ref false in
  let request_timeout =
    match config.faults with No_faults -> None | Light | Heavy -> Some 0.25
  in
  (* One federation member. Member 0 reproduces the original single-site
     campaign byte for byte (same name and fault-stream seeds); further
     members get their own names and decorrelated seed offsets. Every
     member owns a full stack — PEP (independent epoch), cache, store on
     its own disk, faulty network — and registers its create-epoch in
     the oracle history. *)
  let make_member i =
    let name = if i = 0 then "soak-site" else Printf.sprintf "soak-site-%d" i in
    (* Multi-member runs scope each member's emission stream with its
       resource name so the monitor judges epoch freshness per member;
       single-member runs keep the unscoped stream (and its event
       shapes) byte-for-byte as before. *)
    let obs =
      if config.resources = 1 then obs
      else Grid_obs.Obs.scoped obs [ ("resource", name) ]
    in
    let pep_callout, epoch, reload_pep =
      match config.pep with
      | Flat_file_pep ->
        let pep = Grid_callout.File_pep.Compiled.create ~obs initial_sources in
        ( Grid_callout.File_pep.Compiled.callout pep,
          (fun () -> Grid_callout.File_pep.Compiled.epoch pep),
          Grid_callout.File_pep.Compiled.reload pep )
      | Rebac_pep ->
        let pep = Grid_rebac.Pep.create ~obs initial_sources in
        ( Grid_rebac.Pep.callout pep,
          (fun () -> Grid_rebac.Pep.epoch pep),
          Grid_rebac.Pep.reload pep )
    in
    history := (epoch (), answerer_for initial_sources) :: !history;
    let callout q =
      match pep_callout q with
      | Error (Grid_callout.Callout.Denied _) when !flip_next_denial ->
        flip_next_denial := false;
        Ok ()
      | decision -> decision
    in
    (* Token mode: a per-member validator (fed per the service's
       distribution mode) and the token-gating PEP outside the policy
       callout — the token is checked first, then the same inner engine
       decides, so non-revoked subjects get bit-identical answers. *)
    let validator =
      Option.map
        (fun s -> Grid_sts.Service.attach_validator s ~obs ~name ())
        sts
    in
    let callout =
      match sts with
      | None -> callout
      | Some s ->
        Grid_sts.Pep.callout ~obs ?validator
          ~sts_key:(Grid_sts.Service.public_key s) ~audience:"*"
          ~now:(fun () -> Grid_sim.Engine.now engine)
          callout
    in
    let mode = Grid_gram.Mode.extended ~backend:backend_label callout in
    let network =
      Grid_sim.Network.create ?faults:(network_faults config.faults)
        ~fault_seed:(config.seed + 17 + (31 * i)) engine
    in
    let disk =
      Grid_sim.Disk.create ?faults:(disk_faults config.faults)
        ~seed:(config.seed + 29 + (101 * i)) ()
    in
    let store = Grid_store.Store.create ~obs ~snapshot_every:64 ~disk ~name () in
    let authz_cache =
      Grid_callout.Cache.create ~capacity:2048 ~ttl:(Grid_sim.Clock.minutes 5.0) ~obs
        ~epoch
        ?extra_deadline:(Option.map (fun _ -> Grid_sts.Token.credential_deadline) sts)
        ~now:(fun () -> Grid_sim.Engine.now engine)
        ()
    in
    (* A cached permit must not outlive the jti that earned it: any
       revocation this member's validator applies flushes the cache. *)
    Option.iter
      (fun v ->
        Grid_sts.Validator.on_revocation v (fun ~jti:_ ~subject:_ ->
            Grid_callout.Cache.invalidate authz_cache))
      validator;
    let resource =
      Grid_gram.Resource.create ~name ~network ?request_timeout ~authz_cache ~store
        ~policy_epoch:epoch ~obs ~trust
        ~mapper:(Grid_accounts.Mapper.create (Grid_gsi.Gridmap.parse gridmap_text))
        ~mode
        ~lrm:(Grid_lrm.Lrm.create ~obs ~nodes:8 ~cpus_per_node:8 engine)
        ~engine ()
    in
    (resource, epoch, reload_pep)
  in
  let members = Array.init config.resources make_member in
  let member_resources = Array.map (fun (r, _, _) -> r) members in
  let resource = member_resources.(0) in
  let epoch = (fun (_, e, _) -> e) members.(0) in
  let epoch0 = epoch () in
  (* Federation plumbing only past one member: each resource publishes
     into a shared directory, and arrivals place through the broker's
     pure ranked selection (capacity-aware, seeded tie-break, breakers
     fed from submission outcomes). *)
  let directory, providers, broker =
    if config.resources = 1 then (None, [], None)
    else begin
      let directory = Grid_mds.Directory.create engine in
      let providers =
        Array.to_list
          (Array.map
             (fun r ->
               Grid_mds.Provider.attach ~site:(Grid_gram.Resource.name r) ~directory r)
             member_resources)
      in
      let broker =
        Grid_mds.Broker.create ~seed:config.seed ~obs ~directory
          (Array.to_list member_resources)
      in
      (Some directory, providers, Some broker)
    end
  in
  ignore directory;
  let round_robin = ref 0 in
  let pick_resource rsl =
    match broker with
    | None -> resource
    | Some b -> begin
      match Grid_rsl.Job.of_string rsl with
      | Error _ -> resource
      | Ok job -> begin
        match Grid_mds.Broker.select b ~job with
        | r :: _ -> r
        | [] ->
          (* All stale or breaker-open: rotate rather than pile onto one
             member — the arrival still happens, the directory recovers. *)
          incr round_robin;
          member_resources.(!round_robin mod config.resources)
      end
    end
  in

  (* Users: the fusion cast plus a revocable analyst and an outsider whose
     refusals are ordinary traffic, not violations. Each acts through a
     12-hour proxy renewed every ~10 hours. *)
  let tokenized_proxy base =
    match sts with
    | None -> Grid_gsi.Identity.delegate base ~now:(Grid_sim.Engine.now engine)
    | Some s -> begin
      match
        Grid_sts.Service.proxy_with_token s ~now:(Grid_sim.Engine.now engine) base
      with
      | Ok (proxy, _token) -> proxy
      | Error e ->
        invalid_arg
          ("Soak: initial token exchange refused: "
          ^ Grid_sts.Service.exchange_error_to_string e)
    end
  in
  let make_cell dn weight templates =
    let base = Grid_gsi.Identity.create ~ca ~now:(Grid_sim.Engine.now engine) dn in
    { dn; base; proxy = tokenized_proxy base; weight; templates }
  in
  let durations = [ "60"; "180"; "600"; "2400" ] in
  let with_duration template =
    Printf.sprintf "%s(simduration=%s)" template (Grid_util.Rng.pick rng durations)
  in
  let users =
    [ make_cell Fusion_world.bo_liu 3
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=2)";
          "&(executable=compiler)(directory=/sandbox/test)(jobtag=ADS)" ];
      make_cell Fusion_world.kate_keahey 2
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)(count=4)" ];
      make_cell Fusion_world.admin 1
        [ "&(executable=demo)(directory=/sandbox/test)(jobtag=DEMO)" ];
      make_cell mallory 1
        [ "&(executable=TRANSP)(directory=/sandbox/test)(jobtag=NFC)" ];
      make_cell Fusion_world.outsider 1
        [ "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)" ] ]
  in
  let kate = List.nth users 1 in

  let renewals = ref 0 in
  let revocations = ref 0 in
  let reloads = ref 0 in
  let crashes = ref 0 in
  let restored = ref 0 in
  let submitted = ref 0 in
  let accepted = ref 0 in
  let denied = ref 0 in
  let failed = ref 0 in
  let timed_out = ref 0 in
  let management = ref 0 in
  let management_denied = ref 0 in

  (* Batched management ([config.batch > 1]): follow-ups accumulate here
     (newest first, as (manager, owning resource, contact, action)) and
     flush through [Resource.manage_many_direct] — grouped by owning
     member, one authorization batch per group. Credentials are minted
     at flush time, one fresh challenge per request against the owning
     member, exactly as the per-request path does at send time.
     [batch = 1] keeps the original wire path. *)
  let pending :
      (user_cell * Grid_gram.Resource.t * string * Grid_gram.Protocol.management_action)
      list
      ref =
    ref []
  in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let items = List.rev !pending in
      pending := [];
      pending_count := 0;
      Array.iter
        (fun target ->
          let mine = List.filter (fun (_, r, _, _) -> r == target) items in
          if mine <> [] then begin
            let requests =
              Array.of_list
                (List.map
                   (fun (manager, _, contact, action) ->
                     { Grid_gram.Resource.requester =
                         Grid_gsi.Identity.effective_subject manager.proxy;
                       credential =
                         Some
                           (Grid_gsi.Credential.of_identity manager.proxy
                              ~challenge:(Grid_gram.Resource.new_challenge target));
                       contact;
                       action })
                   mine)
            in
            Array.iter
              (function
                | Ok _ -> ()
                | Error _ -> incr management_denied)
              (Grid_gram.Resource.manage_many_direct target requests)
          end)
        member_resources
    end
  in

  (* Every user escrows its identity with the STS, so the token-mode
     renewal rhythm is refresh-before-expiry rather than re-delegation. *)
  Option.iter
    (fun s ->
      List.iter
        (fun cell ->
          ignore
            (Grid_sts.Service.deposit s ~identity:cell.base
               ~authorized_renewers:[ Grid_gsi.Identity.subject cell.base ]
               ~now:(Grid_sim.Engine.now engine) ()))
        users)
    sts;

  (* Proxy renewal: every 10 simulated hours, each user re-delegates a
     fresh 12-hour proxy — the operational rhythm that keeps credential
     expiry from ever authorizing anything. Token mode runs on the
     token's clock instead: refresh-before-expiry at 80% of the TTL,
     through the escrow, so a revoked subject's refresh is refused and
     its proxy simply ages out with the last token. *)
  let renewal_period =
    match sts with
    | None -> Grid_sim.Clock.hours 10.0
    | Some s -> 0.8 *. Grid_sts.Service.default_ttl s
  in
  let renew_cell cell =
    match sts with
    | None ->
      cell.proxy <-
        Grid_gsi.Identity.delegate cell.base ~now:(Grid_sim.Engine.now engine);
      incr renewals;
      Grid_obs.Obs.emit obs ~layer:"gsi" "credential.renewed"
        [ ("subject", cell.dn) ]
    | Some s -> begin
      let now = Grid_sim.Engine.now engine in
      let credential =
        Grid_gsi.Credential.of_identity cell.proxy
          ~challenge:(Grid_sts.Service.fresh_challenge s)
      in
      match
        Grid_sts.Service.refresh s ~now
          ~owner:(Grid_gsi.Identity.subject cell.base) credential
      with
      | Ok (proxy, _token) ->
        cell.proxy <- proxy;
        incr renewals;
        Grid_obs.Obs.emit obs ~layer:"gsi" "credential.renewed"
          [ ("subject", cell.dn) ]
      | Error _ -> () (* revoked or stale: the proxy keeps its last expiry *)
    end
  in
  let rec schedule_renewal cell at =
    if at < total then
      Grid_sim.Engine.schedule_at engine at (fun () ->
          renew_cell cell;
          schedule_renewal cell (at +. renewal_period))
  in
  List.iter (fun cell -> schedule_renewal cell renewal_period) users;

  (* Revocation mid-campaign. Proxy path: mallory's end-entity
     certificate lands on the CA CRL and every chained proxy fails
     validation from the next authentication on. Token mode: the subject
     is revoked at the STS instead — outstanding jtis die and the news
     reaches each member's validator per the configured mode, so
     enforcement flows through the token layer the campaign is
     exercising (the service emits the ["credential.revoked"] and
     ["token.revoked"] events itself). *)
  Grid_sim.Engine.schedule_at engine (0.4 *. total) (fun () ->
      let cell = List.nth users 3 in
      match sts with
      | None ->
        Grid_gsi.Ca.Trust_store.revoke trust
          (Grid_gsi.Identity.certificate cell.base);
        incr revocations;
        Grid_obs.Obs.emit obs ~layer:"ca" "credential.revoked"
          [ ("subject", cell.dn) ]
      | Some s ->
        Grid_sts.Service.revoke_subject s ~now:(Grid_sim.Engine.now engine)
          (Grid_gsi.Identity.subject cell.base);
        incr revocations);

  (* VO/policy churn: membership and jobtag registration change while
     jobs are in flight; each reload recompiles the PEP, bumps the epoch
     (announced on the bus) and extends the oracle's history. *)
  let churn_points = [ 0.3; 0.6; 0.85 ] in
  List.iteri
    (fun i fraction ->
      Grid_sim.Engine.schedule_at engine (fraction *. total) (fun () ->
          (if i mod 2 = 0 then begin
             Grid_vo.Vo.register_jobtag vo (Printf.sprintf "CHURN%d" i);
             Grid_vo.Vo.add_member vo
               ~dn:(Fusion_world.organization ^ Printf.sprintf "/CN=Churn User %d" i)
               ~groups:[ "developers" ]
           end
           else Grid_vo.Vo.remove_member vo ~dn:(Grid_gsi.Dn.parse mallory));
          let fresh = sources () in
          (* Every member recompiles the churned sources. One member is
             immediate (the original single-site behaviour); further
             members lag 5 s apart, so for a short window the federation
             deliberately enforces mixed policy generations — the oracle
             history keyed by epoch keeps the monitor exact through it. *)
          Array.iteri
            (fun m (_, epoch, reload_pep) ->
              if m = 0 then begin
                reload_pep fresh;
                history := (epoch (), answerer_for fresh) :: !history
              end
              else
                Grid_sim.Engine.schedule_after engine
                  (float_of_int m *. 5.0)
                  (fun () ->
                    reload_pep fresh;
                    history := (epoch (), answerer_for fresh) :: !history))
            members;
          incr reloads))
    churn_points;

  (* Submission machinery over the networked entry points: challenge
     minted per request, proxy credential presented, reply tallied. *)
  let submit cell rsl =
    incr submitted;
    let resource = pick_resource rsl in
    let site = Grid_gram.Resource.name resource in
    let credential =
      Grid_gsi.Credential.of_identity cell.proxy
        ~challenge:(Grid_gram.Resource.new_challenge resource)
    in
    Grid_gram.Resource.submit resource ~credential ~rsl ~reply:(fun result ->
        (match broker with
        | None -> ()
        | Some b -> begin
          match result with
          | Error (Grid_gram.Protocol.Request_timeout _) ->
            Grid_mds.Broker.observe b ~site `Timeout
          | Ok _ | Error _ -> Grid_mds.Broker.observe b ~site `Answered
        end);
        match result with
        | Ok reply ->
          incr accepted;
          (* Management follow-ups: usually the owner, sometimes the VO
             admin exercising third-party management. *)
          if Grid_util.Rng.float rng 1.0 < 0.35 then begin
            let manager =
              if Grid_util.Rng.float rng 1.0 < 0.3 then kate else cell
            in
            let action =
              Grid_util.Rng.pick rng
                [ Grid_gram.Protocol.Status;
                  Grid_gram.Protocol.Cancel;
                  Grid_gram.Protocol.Signal Grid_gram.Protocol.Suspend ]
            in
            let delay = 1.0 +. Grid_util.Rng.float rng 60.0 in
            Grid_sim.Engine.schedule_after engine delay (fun () ->
                incr management;
                if config.batch = 1 then begin
                  let credential =
                    Grid_gsi.Credential.of_identity manager.proxy
                      ~challenge:(Grid_gram.Resource.new_challenge resource)
                  in
                  Grid_gram.Resource.manage resource
                    ~requester:(Grid_gsi.Identity.effective_subject manager.proxy)
                    ~credential ~contact:reply.Grid_gram.Protocol.job_contact action
                    ~reply:(fun result ->
                      match result with
                      | Ok _ -> ()
                      | Error (Grid_gram.Protocol.Request_timed_out _) ->
                        incr timed_out
                      | Error _ -> incr management_denied)
                end
                else begin
                  pending :=
                    (manager, resource, reply.Grid_gram.Protocol.job_contact, action)
                    :: !pending;
                  incr pending_count;
                  if !pending_count >= config.batch then flush_pending ()
                end)
          end
        | Error
            ( Grid_gram.Protocol.Authorization_failed _
            | Grid_gram.Protocol.Authentication_failed _
            | Grid_gram.Protocol.Gatekeeper_refused _ ) -> incr denied
        | Error (Grid_gram.Protocol.Request_timeout _) -> incr timed_out
        | Error _ -> incr failed)
  in
  let pick_user () =
    let weights = List.fold_left (fun acc c -> acc + c.weight) 0 users in
    let ticket = Grid_util.Rng.int rng weights in
    let rec go acc = function
      | [] -> List.hd users
      | [ c ] -> c
      | c :: rest -> if ticket < acc + c.weight then c else go (acc + c.weight) rest
    in
    go 0 users
  in
  let schedule_arrival at =
    let cell = pick_user () in
    let rsl = with_duration (Grid_util.Rng.pick rng cell.templates) in
    Grid_sim.Engine.schedule_at engine at (fun () -> submit cell rsl)
  in

  (* Baseline Poisson arrivals across the whole campaign. *)
  let rate = float_of_int config.jobs_per_day /. Grid_sim.Clock.days 1.0 in
  let t = ref 0.0 in
  let exponential () = -.log (1.0 -. Grid_util.Rng.float rng 1.0) /. rate in
  while
    t := !t +. exponential ();
    !t < total
  do
    schedule_arrival !t
  done;

  (* Daily bursts with a job-manager crash in the middle: a tenth of the
     day's volume lands in ten minutes, and halfway through the burst the
     job manager dies and recovers from snapshot + journal. *)
  let full_days = int_of_float (ceil config.days) in
  for day = 0 to full_days - 1 do
    let burst_start = (float_of_int day +. 0.5) *. Grid_sim.Clock.days 1.0 in
    if burst_start < total then begin
      let burst_jobs = max 5 (config.jobs_per_day / 10) in
      for _ = 1 to burst_jobs do
        schedule_arrival (burst_start +. Grid_util.Rng.float rng 600.0)
      done;
      Grid_sim.Engine.schedule_at engine (burst_start +. 300.0) (fun () ->
          incr crashes;
          (* Rotate the crash target so every member's recovery path is
             exercised across a multi-day federation campaign. *)
          let target = member_resources.(day mod config.resources) in
          Grid_gram.Resource.crash target;
          let summary = Grid_gram.Resource.recover target in
          restored := !restored + summary.Grid_gram.Resource.jobs_restored)
    end
  done;

  (* --- Violation self-injection ---------------------------------------- *)
  let synthetic ~at f =
    Grid_sim.Engine.schedule_at engine at (fun () ->
        let corr = Grid_obs.Obs.fresh_correlation obs in
        Grid_obs.Obs.with_correlation obs ~corr f)
  in
  (match config.inject with
  | None -> ()
  | Some Grid_obs.Monitor.Default_deny ->
    (* Real mis-wiring: arm the flip, then provoke a denial the PEP would
       refuse (developers are capped at count <= 4). *)
    Grid_sim.Engine.schedule_at engine (0.5 *. total) (fun () ->
        flip_next_denial := true;
        submit (List.hd users)
          "&(executable=test1)(directory=/sandbox/test)(jobtag=ADS)(count=6)(simduration=60)")
  | Some Grid_obs.Monitor.Stale_epoch ->
    (* A cache answer stamped with the pre-churn epoch, emitted well
       after the first reload propagated. Fleet campaigns scope every
       member stream by resource and the monitor judges epoch freshness
       per scope, so the plant must land in member 0's scope (the epoch0
       baseline) or it would fall into an untracked scope and pass. *)
    synthetic ~at:(0.45 *. total) (fun () ->
        let attrs = [ ("scope", "injected"); ("epoch", string_of_int epoch0) ] in
        let attrs =
          if config.resources > 1 then ("resource", "soak-site") :: attrs
          else attrs
        in
        Grid_obs.Obs.emit obs ~layer:"injected" "cache.hit" attrs)
  | Some Grid_obs.Monitor.Expired_credential ->
    synthetic ~at:(0.5 *. total) (fun () ->
        let at = Grid_sim.Engine.now engine in
        Grid_obs.Obs.emit obs ~layer:"injected" "authz.decision"
          [ ("backend", "injected"); ("action", "start"); ("outcome", "permitted");
            ("subject", "/O=Grid/CN=Injected Ghost");
            ("cred_expiry", Printf.sprintf "%.3f" (at -. 3600.0)) ])
  | Some Grid_obs.Monitor.Fail_open_upgrade ->
    synthetic ~at:(0.5 *. total) (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "authz.degraded"
          [ ("mode", "fail_closed"); ("original", "system_error");
            ("final", "permitted") ])
  | Some Grid_obs.Monitor.Recovery_divergence ->
    (* A durable admission whose crash/recovery chain reports a clean
       store yet never restores the job — placed after the campaign so it
       cannot entangle with a real recovery. *)
    let base = total +. 60.0 in
    synthetic ~at:base (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "job.created"
          [ ("contact", "ghost-job"); ("durable", "true") ]);
    synthetic ~at:(base +. 60.0) (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "resource.crashed"
          [ ("lost", "1") ]);
    synthetic ~at:(base +. 120.0) (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "resource.recovered"
          [ ("restored", "0"); ("dropped_bytes", "0"); ("decode_failures", "0") ])
  | Some Grid_obs.Monitor.Token_revocation ->
    (* A revoked jti accepted by a validating PEP well outside the
       monitor's effective window — the chain the instrumentation would
       emit if a validator silently lost a revocation. The synthetic
       token's [not_after] lies past the acceptance so the plant trips
       exactly one class, not expiry as well. *)
    let revoke_at = 0.5 *. total in
    let accept_at = revoke_at +. monitor_window +. 3600.0 in
    synthetic ~at:revoke_at (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "token.revoked"
          [ ("jti", "injected-jti"); ("subject", "/O=Grid/CN=Injected Ghost");
            ("revoked_at", Printf.sprintf "%.6f" (Grid_sim.Engine.now engine)) ]);
    synthetic ~at:accept_at (fun () ->
        Grid_obs.Obs.emit obs ~layer:"injected" "token.validated"
          [ ("outcome", "accepted"); ("jti", "injected-jti");
            ("subject", "/O=Grid/CN=Injected Ghost"); ("action", "start");
            ("not_after", Printf.sprintf "%.6f" (accept_at +. 7200.0)) ]));

  (* Providers re-arm their publish loop forever — and a pull-mode STS
     validator its poll loop — so those campaigns cannot drain with a
     plain [run]: advance past the campaign end plus the longest
     follow-up delays, quiesce the loops, then settle the remainder. The
     original single-site proxy-path drain is kept byte for byte. *)
  (match (providers, sts) with
  | [], None -> Grid_sim.Engine.run engine
  | ps, s ->
    Grid_sim.Engine.run_until engine (total +. 600.0);
    List.iter Grid_mds.Provider.stop ps;
    Option.iter Grid_sts.Service.quiesce s;
    Grid_sim.Engine.run engine);
  (* A partial management batch may remain after the last follow-up:
     flush it and drain whatever the performed actions scheduled. *)
  flush_pending ();
  Grid_sim.Engine.run engine;
  Option.iter Grid_obs.Monitor.flush monitor;

  { submitted = !submitted;
    accepted = !accepted;
    denied = !denied;
    failed = !failed;
    timed_out = !timed_out;
    management = !management;
    management_denied = !management_denied;
    renewals = !renewals;
    revocations = !revocations;
    reloads = !reloads;
    crashes = !crashes;
    jobs_restored = !restored;
    events_checked =
      (match monitor with Some m -> Grid_obs.Monitor.events_seen m | None -> 0);
    final_epoch = Some (epoch ());
    violations =
      (match monitor with Some m -> Grid_obs.Monitor.violations m | None -> []) }

let violation_classes report =
  List.sort_uniq compare
    (List.map (fun (v : Grid_obs.Monitor.violation) -> v.Grid_obs.Monitor.vclass)
       report.violations)

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>soak campaign: %d submitted (%d accepted, %d denied, %d failed, %d timed out)@,\
     management: %d requests (%d refused)@,\
     churn: %d renewals, %d revocations, %d policy reloads, %d crashes (%d jobs restored)@,\
     monitor: %d events checked, %d violation(s)%a@]"
    r.submitted r.accepted r.denied r.failed r.timed_out r.management
    r.management_denied r.renewals r.revocations r.reloads r.crashes r.jobs_restored
    r.events_checked (List.length r.violations)
    (fun ppf -> function
      | [] -> ()
      | vs -> Fmt.pf ppf "@,%a" (Fmt.list ~sep:Fmt.cut Grid_obs.Monitor.pp_violation) vs)
    r.violations
