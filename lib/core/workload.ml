(* Synthetic workload generation.

   Drives a resource with a randomized but reproducible stream of job
   submissions and management requests — the substrate for the
   sustained-throughput benchmark (T12) and for stress tests asserting
   global invariants (every submission accounted for, no CPU
   oversubscription, all jobs terminal). Arrivals are Poisson
   (exponential inter-arrival times); users and RSL templates are chosen
   by weight. *)

type user_profile = {
  identity : Grid_gsi.Identity.t;
  rsl_templates : string list; (* chosen uniformly per submission *)
  weight : int;                (* relative share of the arrival stream *)
}

type config = {
  arrival_rate : float;        (* jobs per simulated second *)
  job_count : int;             (* total submissions to generate *)
  management_probability : float; (* chance a job gets a follow-up action *)
  management_batch : int;      (* 1 = per-request management (the old path);
                                  N > 1 coalesces follow-ups and authorizes
                                  them through the batch pipeline *)
  seed : int;
}

let default_config =
  { arrival_rate = 1.0;
    job_count = 100;
    management_probability = 0.3;
    management_batch = 1;
    seed = 42 }

type stats = {
  mutable submitted : int;
  mutable accepted : int;
  mutable denied_authorization : int;
  mutable denied_other : int;
  mutable timed_out : int;
  mutable management_requests : int;
  mutable management_denied : int;
}

let fresh_stats () =
  { submitted = 0;
    accepted = 0;
    denied_authorization = 0;
    denied_other = 0;
    timed_out = 0;
    management_requests = 0;
    management_denied = 0 }

let pp_stats ppf s =
  Fmt.pf ppf
    "submitted %d; accepted %d; denied (authz) %d; denied (other) %d; timed out %d; managed %d (%d denied)"
    s.submitted s.accepted s.denied_authorization s.denied_other s.timed_out
    s.management_requests s.management_denied

let pick_weighted rng profiles =
  let total = List.fold_left (fun acc p -> acc + p.weight) 0 profiles in
  if total <= 0 then invalid_arg "Workload: weights must sum to a positive number";
  let ticket = Grid_util.Rng.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "Workload: empty profile list"
    | [ p ] -> p
    | p :: rest -> if ticket < acc + p.weight then p else go (acc + p.weight) rest
  in
  go 0 profiles

let exponential rng rate = -.log (1.0 -. Grid_util.Rng.float rng 1.0) /. rate

(* Run a workload to completion: schedules all arrivals, drains the
   engine, returns the tally. Management follow-ups are sent by the job
   owner a short while after acceptance. *)
let run ?(sts : Grid_sts.Service.t option) ~(engine : Grid_sim.Engine.t)
    ~(resource : Grid_gram.Resource.t) ~(profiles : user_profile list)
    (config : config) : stats =
  if profiles = [] then invalid_arg "Workload.run: no user profiles";
  if config.management_batch < 1 then
    invalid_arg "Workload.run: management_batch must be >= 1";
  let rng = Grid_util.Rng.create ~seed:config.seed in
  let stats = fresh_stats () in
  (* Batched management: follow-ups accumulate here (newest first) and
     flush through [Resource.manage_many_direct] — one authorization
     batch per [management_batch] requests — instead of going over the
     wire one by one. [management_batch = 1] keeps the original
     per-request path, byte for byte. *)
  let pending : Grid_gram.Resource.manage_request list ref = ref [] in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let batch = Array.of_list (List.rev !pending) in
      pending := [];
      pending_count := 0;
      stats.management_requests <- stats.management_requests + Array.length batch;
      Array.iter
        (function
          | Ok _ -> ()
          | Error _ -> stats.management_denied <- stats.management_denied + 1)
        (Grid_gram.Resource.manage_many_direct resource batch)
    end
  in
  let arrival_time = ref (Grid_sim.Engine.now engine) in
  for _ = 1 to config.job_count do
    arrival_time := !arrival_time +. exponential rng config.arrival_rate;
    let profile = pick_weighted rng profiles in
    let rsl = Grid_util.Rng.pick rng profile.rsl_templates in
    Grid_sim.Engine.schedule_at engine !arrival_time (fun () ->
        stats.submitted <- stats.submitted + 1;
        let client = Grid_gram.Client.create ~identity:profile.identity ~resource () in
        Grid_gram.Client.submit client ~rsl ~reply:(fun result ->
            match result with
            | Error (Grid_gram.Protocol.Authorization_failed _)
            | Error (Grid_gram.Protocol.Gatekeeper_refused _) ->
              stats.denied_authorization <- stats.denied_authorization + 1
            | Error (Grid_gram.Protocol.Request_timeout _) ->
              stats.timed_out <- stats.timed_out + 1
            | Error _ -> stats.denied_other <- stats.denied_other + 1
            | Ok reply ->
              stats.accepted <- stats.accepted + 1;
              if Grid_util.Rng.float rng 1.0 < config.management_probability then begin
                let action =
                  Grid_util.Rng.pick rng
                    [ Grid_gram.Protocol.Status;
                      Grid_gram.Protocol.Cancel;
                      Grid_gram.Protocol.Signal Grid_gram.Protocol.Suspend ]
                in
                let delay = 1.0 +. Grid_util.Rng.float rng 30.0 in
                Grid_sim.Engine.schedule_after engine delay (fun () ->
                    if config.management_batch = 1 then begin
                      stats.management_requests <- stats.management_requests + 1;
                      Grid_gram.Client.manage client
                        ~contact:reply.Grid_gram.Protocol.job_contact action
                        ~reply:(fun result ->
                          match result with
                          | Ok _ -> ()
                          | Error (Grid_gram.Protocol.Request_timed_out _) ->
                            stats.timed_out <- stats.timed_out + 1
                          | Error _ ->
                            stats.management_denied <- stats.management_denied + 1)
                    end
                    else begin
                      pending :=
                        { Grid_gram.Resource.requester =
                            Grid_gsi.Identity.subject profile.identity;
                          credential = None;
                          contact = reply.Grid_gram.Protocol.job_contact;
                          action }
                        :: !pending;
                      incr pending_count;
                      if !pending_count >= config.management_batch then flush_pending ()
                    end)
              end))
  done;
  (* A tokenized resource with a pull-mode validator reschedules its CRL
     poll forever, so a bare drain would never terminate: settle past the
     longest job (simduration <= 120 s) plus the management follow-up
     window, stop the poll loops, then drain what remains. *)
  (match sts with
  | None -> Grid_sim.Engine.run engine
  | Some s ->
    Grid_sim.Engine.run_until engine (!arrival_time +. 256.0);
    Grid_sts.Service.quiesce s;
    Grid_sim.Engine.run engine);
  (* A partial batch may remain after the last arrival: flush it and
     drain whatever the performed actions scheduled. *)
  flush_pending ();
  Grid_sim.Engine.run engine;
  stats

(* Population-scale generation over a fleet.

   Subjects are drawn zipfian from a seeded synthesizer — identities are
   minted at arrival time and dropped after the submission, so resident
   credential state tracks active jobs, not population size. Placement
   goes through the fleet's asynchronous brokered lane (safe inside
   engine callbacks); management follow-ups are routed cross-resource,
   and a configurable share of them come from the community admin — the
   third-party-manager flow of the paper, exercised across sites.
   Mid-flight, at each churn point, the population's generation advances
   and every member reloads its policy on a staggered schedule, so for a
   short window different members enforce different epochs. *)

type population_config = {
  pop_arrival_rate : float;
  pop_job_count : int;
  pop_management_probability : float;
  pop_management_batch : int;
  cross_admin_probability : float;
      (* share of management follow-ups issued by the community admin
         rather than the job owner *)
  churn_points : float list; (* fractions of the arrival span *)
  reload_stagger : float;    (* seconds between successive member reloads *)
  pop_seed : int;
}

let default_population_config =
  { pop_arrival_rate = 20.0;
    pop_job_count = 2_000;
    pop_management_probability = 0.25;
    pop_management_batch = 1;
    cross_admin_probability = 0.2;
    churn_points = [ 0.35; 0.7 ];
    reload_stagger = 5.0;
    pop_seed = 42 }

type population_stats = {
  tally : stats;
  mutable unplaceable : int;
  mutable cross_admin_requests : int;
  mutable churns : int;
  mutable reloads : int;
  mutable distinct_subjects : int;
  per_resource_accepted : (string, int) Hashtbl.t;
  mutable latencies : float list;
      (* simulated submit->reply time of every placement attempt
         (accepted or refused), newest first *)
}

let latency_percentile p q =
  match p.latencies with
  | [] -> None
  | latencies ->
    let sorted = Array.of_list latencies in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let i = int_of_float (q *. float_of_int (n - 1)) in
    Some sorted.(max 0 (min (n - 1) i))

let pp_population_stats ppf p =
  Fmt.pf ppf "%a; unplaceable %d; cross-admin %d; churns %d; reloads %d; distinct %d"
    pp_stats p.tally p.unplaceable p.cross_admin_requests p.churns p.reloads
    p.distinct_subjects

let run_population ?sts ~(fleet : Fleet.t) ~(population : Population.t)
    ~(ca : Grid_gsi.Ca.t) (config : population_config) : population_stats =
  if config.pop_job_count < 1 then
    invalid_arg "Workload.run_population: pop_job_count must be >= 1";
  if config.pop_management_batch < 1 then
    invalid_arg "Workload.run_population: pop_management_batch must be >= 1";
  let engine = Fleet.engine fleet in
  let rng = Grid_util.Rng.create ~seed:config.pop_seed in
  let stats = fresh_stats () in
  let pop_stats =
    { tally = stats;
      unplaceable = 0;
      cross_admin_requests = 0;
      churns = 0;
      reloads = 0;
      distinct_subjects = 0;
      per_resource_accepted = Hashtbl.create (Fleet.size fleet);
      latencies = [] }
  in
  (* One bit per rank: distinct-subject accounting in size/8 bytes, the
     only population-sized state the runner holds. *)
  let seen = Bytes.make ((Population.size population / 8) + 1) '\000' in
  let mark_seen rank =
    let byte = rank / 8 and bit = rank mod 8 in
    let current = Char.code (Bytes.get seen byte) in
    if current land (1 lsl bit) = 0 then begin
      Bytes.set seen byte (Char.chr (current lor (1 lsl bit)));
      pop_stats.distinct_subjects <- pop_stats.distinct_subjects + 1
    end
  in
  let admin_rank = Population.admin_rank population in
  (* Tokenized management ([?sts]): the token gate fails closed on
     credential-less queries, and challenges are per-gatekeeper, so the
     credential is minted only once the fleet has located the owning
     member — [mint_credential] is handed to [Fleet.manage]'s
     [credential_for]. Ranks are remembered per requester DN so the
     batched lane can mint at flush time. *)
  let rank_of_dn : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let mint_credential rank resource =
    match sts with
    | None -> None
    | Some s -> begin
      let now = Grid_sim.Engine.now engine in
      let identity = Population.identity population ~ca ~now rank in
      match Grid_sts.Service.proxy_with_token s ~now identity with
      | Ok (proxy, _token) ->
        Some
          (Grid_gsi.Credential.of_identity proxy
             ~challenge:(Grid_gram.Resource.new_challenge resource))
      | Error _ -> None
    end
  in
  let mint_for_request resource (r : Grid_gram.Resource.manage_request) =
    match
      Hashtbl.find_opt rank_of_dn
        (Grid_gsi.Dn.to_string r.Grid_gram.Resource.requester)
    with
    | None -> None
    | Some rank -> mint_credential rank resource
  in
  let pending : Grid_gram.Resource.manage_request list ref = ref [] in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let batch = Array.of_list (List.rev !pending) in
      pending := [];
      pending_count := 0;
      stats.management_requests <- stats.management_requests + Array.length batch;
      Array.iter
        (function
          | Ok _ -> ()
          | Error _ -> stats.management_denied <- stats.management_denied + 1)
        (Fleet.manage_many
           ?credential_for:(Option.map (fun _ -> mint_for_request) sts)
           fleet batch)
    end
  in
  let manage_followup ~owner_rank ~contact =
    let cross =
      Grid_util.Rng.float rng 1.0 < config.cross_admin_probability
      && owner_rank <> admin_rank
    in
    let requester_rank = if cross then admin_rank else owner_rank in
    if cross then pop_stats.cross_admin_requests <- pop_stats.cross_admin_requests + 1;
    let action =
      Grid_util.Rng.pick rng
        [ Grid_gram.Protocol.Status;
          Grid_gram.Protocol.Cancel;
          Grid_gram.Protocol.Signal Grid_gram.Protocol.Suspend ]
    in
    let delay = 1.0 +. Grid_util.Rng.float rng 30.0 in
    Grid_sim.Engine.schedule_after engine delay (fun () ->
        let requester =
          Grid_gsi.Dn.parse (Population.dn population requester_rank)
        in
        if config.pop_management_batch = 1 then begin
          stats.management_requests <- stats.management_requests + 1;
          Fleet.manage
            ?credential_for:
              (Option.map (fun _ -> mint_credential requester_rank) sts)
            fleet ~requester ~contact action
            ~reply:(fun result ->
              match result with
              | Ok _ -> ()
              | Error (Grid_gram.Protocol.Request_timed_out _) ->
                stats.timed_out <- stats.timed_out + 1
              | Error _ -> stats.management_denied <- stats.management_denied + 1)
        end
        else begin
          Hashtbl.replace rank_of_dn (Grid_gsi.Dn.to_string requester) requester_rank;
          pending :=
            { Grid_gram.Resource.requester; credential = None; contact; action }
            :: !pending;
          incr pending_count;
          if !pending_count >= config.pop_management_batch then flush_pending ()
        end)
  in
  let start = Grid_sim.Engine.now engine in
  let arrival_time = ref start in
  for _ = 1 to config.pop_job_count do
    arrival_time := !arrival_time +. exponential rng config.pop_arrival_rate;
    let rank = Population.sample population rng in
    Grid_sim.Engine.schedule_at engine !arrival_time (fun () ->
        stats.submitted <- stats.submitted + 1;
        mark_seen rank;
        (* Identity minted at arrival, dropped with this closure. Under
           [?sts] the arrival first exchanges it for a token-carrying
           proxy — an exchange refusal leaves the bare identity to be
           denied at the member's token gate, ordinary traffic. *)
        let identity =
          Population.identity population ~ca ~now:(Grid_sim.Engine.now engine) rank
        in
        let identity =
          match sts with
          | None -> identity
          | Some s -> begin
            match
              Grid_sts.Service.proxy_with_token s
                ~now:(Grid_sim.Engine.now engine) identity
            with
            | Ok (proxy, _token) -> proxy
            | Error _ -> identity
          end
        in
        let rsl = Population.template population rng rank in
        let sent = Grid_sim.Engine.now engine in
        Fleet.submit fleet ~identity ~rsl ~reply:(fun result ->
            pop_stats.latencies <-
              (Grid_sim.Engine.now engine -. sent) :: pop_stats.latencies;
            match result with
            | Ok (site, reply) ->
              stats.accepted <- stats.accepted + 1;
              Hashtbl.replace pop_stats.per_resource_accepted site
                (1
                + Option.value
                    (Hashtbl.find_opt pop_stats.per_resource_accepted site)
                    ~default:0);
              if Grid_util.Rng.float rng 1.0 < config.pop_management_probability then
                manage_followup ~owner_rank:rank
                  ~contact:reply.Grid_gram.Protocol.job_contact
            | Error Fleet.Unplaceable ->
              pop_stats.unplaceable <- pop_stats.unplaceable + 1
            | Error (Fleet.Site_error (_, Grid_gram.Protocol.Authorization_failed _))
            | Error (Fleet.Site_error (_, Grid_gram.Protocol.Gatekeeper_refused _)) ->
              stats.denied_authorization <- stats.denied_authorization + 1
            | Error (Fleet.Unreachable _) -> stats.timed_out <- stats.timed_out + 1
            | Error (Fleet.Rejected _) | Error (Fleet.Site_error _) ->
              stats.denied_other <- stats.denied_other + 1))
  done;
  let span = !arrival_time -. start in
  (* Generation churn plus staggered per-member reloads: between the
     churn instant and the last member's reload, different members
     enforce different policy generations — deliberately. *)
  List.iter
    (fun fraction ->
      Grid_sim.Engine.schedule_at engine
        (start +. (fraction *. span))
        (fun () ->
          Population.churn population;
          pop_stats.churns <- pop_stats.churns + 1;
          for i = 0 to Fleet.size fleet - 1 do
            Grid_sim.Engine.schedule_after engine
              (float_of_int i *. config.reload_stagger)
              (fun () ->
                ignore (Fleet.reload_member fleet i);
                pop_stats.reloads <- pop_stats.reloads + 1)
          done))
    config.churn_points;
  (* Providers re-arm themselves forever, so a plain [run] would never
     return: advance to past the last arrival and its longest follow-up,
     quiesce the publish loops, then settle the remainder. *)
  Grid_sim.Engine.run_until engine (!arrival_time +. 64.0);
  Fleet.quiesce fleet;
  flush_pending ();
  Grid_sim.Engine.run engine;
  pop_stats
