(* Synthetic workload generation.

   Drives a resource with a randomized but reproducible stream of job
   submissions and management requests — the substrate for the
   sustained-throughput benchmark (T12) and for stress tests asserting
   global invariants (every submission accounted for, no CPU
   oversubscription, all jobs terminal). Arrivals are Poisson
   (exponential inter-arrival times); users and RSL templates are chosen
   by weight. *)

type user_profile = {
  identity : Grid_gsi.Identity.t;
  rsl_templates : string list; (* chosen uniformly per submission *)
  weight : int;                (* relative share of the arrival stream *)
}

type config = {
  arrival_rate : float;        (* jobs per simulated second *)
  job_count : int;             (* total submissions to generate *)
  management_probability : float; (* chance a job gets a follow-up action *)
  management_batch : int;      (* 1 = per-request management (the old path);
                                  N > 1 coalesces follow-ups and authorizes
                                  them through the batch pipeline *)
  seed : int;
}

let default_config =
  { arrival_rate = 1.0;
    job_count = 100;
    management_probability = 0.3;
    management_batch = 1;
    seed = 42 }

type stats = {
  mutable submitted : int;
  mutable accepted : int;
  mutable denied_authorization : int;
  mutable denied_other : int;
  mutable timed_out : int;
  mutable management_requests : int;
  mutable management_denied : int;
}

let fresh_stats () =
  { submitted = 0;
    accepted = 0;
    denied_authorization = 0;
    denied_other = 0;
    timed_out = 0;
    management_requests = 0;
    management_denied = 0 }

let pp_stats ppf s =
  Fmt.pf ppf
    "submitted %d; accepted %d; denied (authz) %d; denied (other) %d; timed out %d; managed %d (%d denied)"
    s.submitted s.accepted s.denied_authorization s.denied_other s.timed_out
    s.management_requests s.management_denied

let pick_weighted rng profiles =
  let total = List.fold_left (fun acc p -> acc + p.weight) 0 profiles in
  if total <= 0 then invalid_arg "Workload: weights must sum to a positive number";
  let ticket = Grid_util.Rng.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "Workload: empty profile list"
    | [ p ] -> p
    | p :: rest -> if ticket < acc + p.weight then p else go (acc + p.weight) rest
  in
  go 0 profiles

let exponential rng rate = -.log (1.0 -. Grid_util.Rng.float rng 1.0) /. rate

(* Run a workload to completion: schedules all arrivals, drains the
   engine, returns the tally. Management follow-ups are sent by the job
   owner a short while after acceptance. *)
let run ~(engine : Grid_sim.Engine.t) ~(resource : Grid_gram.Resource.t)
    ~(profiles : user_profile list) (config : config) : stats =
  if profiles = [] then invalid_arg "Workload.run: no user profiles";
  if config.management_batch < 1 then
    invalid_arg "Workload.run: management_batch must be >= 1";
  let rng = Grid_util.Rng.create ~seed:config.seed in
  let stats = fresh_stats () in
  (* Batched management: follow-ups accumulate here (newest first) and
     flush through [Resource.manage_many_direct] — one authorization
     batch per [management_batch] requests — instead of going over the
     wire one by one. [management_batch = 1] keeps the original
     per-request path, byte for byte. *)
  let pending : Grid_gram.Resource.manage_request list ref = ref [] in
  let pending_count = ref 0 in
  let flush_pending () =
    if !pending_count > 0 then begin
      let batch = Array.of_list (List.rev !pending) in
      pending := [];
      pending_count := 0;
      stats.management_requests <- stats.management_requests + Array.length batch;
      Array.iter
        (function
          | Ok _ -> ()
          | Error _ -> stats.management_denied <- stats.management_denied + 1)
        (Grid_gram.Resource.manage_many_direct resource batch)
    end
  in
  let arrival_time = ref (Grid_sim.Engine.now engine) in
  for _ = 1 to config.job_count do
    arrival_time := !arrival_time +. exponential rng config.arrival_rate;
    let profile = pick_weighted rng profiles in
    let rsl = Grid_util.Rng.pick rng profile.rsl_templates in
    Grid_sim.Engine.schedule_at engine !arrival_time (fun () ->
        stats.submitted <- stats.submitted + 1;
        let client = Grid_gram.Client.create ~identity:profile.identity ~resource () in
        Grid_gram.Client.submit client ~rsl ~reply:(fun result ->
            match result with
            | Error (Grid_gram.Protocol.Authorization_failed _)
            | Error (Grid_gram.Protocol.Gatekeeper_refused _) ->
              stats.denied_authorization <- stats.denied_authorization + 1
            | Error (Grid_gram.Protocol.Request_timeout _) ->
              stats.timed_out <- stats.timed_out + 1
            | Error _ -> stats.denied_other <- stats.denied_other + 1
            | Ok reply ->
              stats.accepted <- stats.accepted + 1;
              if Grid_util.Rng.float rng 1.0 < config.management_probability then begin
                let action =
                  Grid_util.Rng.pick rng
                    [ Grid_gram.Protocol.Status;
                      Grid_gram.Protocol.Cancel;
                      Grid_gram.Protocol.Signal Grid_gram.Protocol.Suspend ]
                in
                let delay = 1.0 +. Grid_util.Rng.float rng 30.0 in
                Grid_sim.Engine.schedule_after engine delay (fun () ->
                    if config.management_batch = 1 then begin
                      stats.management_requests <- stats.management_requests + 1;
                      Grid_gram.Client.manage client
                        ~contact:reply.Grid_gram.Protocol.job_contact action
                        ~reply:(fun result ->
                          match result with
                          | Ok _ -> ()
                          | Error (Grid_gram.Protocol.Request_timed_out _) ->
                            stats.timed_out <- stats.timed_out + 1
                          | Error _ ->
                            stats.management_denied <- stats.management_denied + 1)
                    end
                    else begin
                      pending :=
                        { Grid_gram.Resource.requester =
                            Grid_gsi.Identity.subject profile.identity;
                          credential = None;
                          contact = reply.Grid_gram.Protocol.job_contact;
                          action }
                        :: !pending;
                      incr pending_count;
                      if !pending_count >= config.management_batch then flush_pending ()
                    end)
              end))
  done;
  Grid_sim.Engine.run engine;
  (* A partial batch may remain after the last arrival: flush it and
     drain whatever the performed actions scheduled. *)
  flush_pending ();
  Grid_sim.Engine.run engine;
  stats
