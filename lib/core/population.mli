(** Population-scale subject synthesis: 10^5-10^6 distinct DNs derived
    on demand from a seed, zipfian activity, and O(groups) policy via
    DN-prefix grants — no per-user state is ever materialized. *)

type t

val create : seed:int -> size:int -> t
(** A synthesizer for [size] distinct subjects. O(1) in [size]: only the
    seed, the size, a derived community tag and a churn counter are
    resident. Raises [Invalid_argument] when [size < 1]. *)

val seed : t -> int
val size : t -> int

val generation : t -> int
(** The group/role churn counter; starts at 0. *)

val churn : t -> unit
(** Advance the churn generation: {!source} afterwards grants different
    rights (count ceilings, sanctioned executables, admin manage tags).
    DNs and group membership are generation-independent — a subject's
    identity never changes, only what policy says about their group. *)

val sample : t -> Grid_util.Rng.t -> int
(** Draw a user rank zipfian(s=1): rank 0 is the most active subject.
    O(1) time and allocation — continuous inverse-CDF, no rank table. *)

val dn : t -> int -> string
(** The subject DN of a rank, deterministic in [(seed, rank)] and
    distinct across seeds (the community tag is seed-derived). Raises
    [Invalid_argument] out of [0, size). *)

val organization : t -> string
(** The community's DN root; every synthesized DN lives under it. *)

val group_name : t -> int -> string
(** ["developers"] (60%), ["analysts"] (30%) or ["admins"] (10%),
    interleaved by rank so the zipf head covers all three. *)

val jobtag : t -> int -> string
(** The jobtag this rank's group submits under. *)

val template : t -> Grid_util.Rng.t -> int -> string
(** A group-appropriate RSL body for one submission by this rank. *)

val admin_rank : t -> int
(** The first admin rank — the synthetic third-party manager. *)

val identity : t -> ca:Grid_gsi.Ca.t -> now:Grid_sim.Clock.time -> int -> Grid_gsi.Identity.t
(** Mint the rank's identity (deterministic keypair from the DN). The
    caller creates identities only for active arrivals, keeping resident
    credential state O(active jobs). *)

val policy : t -> Grid_policy.Types.t
(** The community policy at the current generation: one jobtag
    requirement on the root plus one grant statement per group prefix —
    O(groups) statements for the whole population. *)

val source : t -> Grid_policy.Combine.source
(** {!policy} wrapped as a combinable source; the name carries the
    community tag and generation. *)

val owner_policy : t -> Grid_policy.Types.t
(** The resource-owner side of admitting this community: start off the
    reserved queue, management open to the community policy. Combination
    is conjunctive with per-source default-deny, so these statements must
    be appended to the owner's own source (and {!policy} to the VO-side
    source) — a third stand-alone source would deny everyone else. *)
