(** Multi-day chaos soak campaigns watched by the safety monitor.

    A campaign runs the fusion testbed through simulated days of
    operational churn — credential renewal and revocation, VO/policy
    reloads, job-manager crashes during submission bursts, network and
    disk faults — with every layer emitting correlated wide events that
    {!Grid_obs.Monitor} checks online against the paper's enforcement
    invariants. The driver supplies the monitor's policy oracle from its
    own (epoch, sources) history, so decisions are judged against the
    policy that was live at their epoch even across reloads.

    [inject] turns a campaign into a monitor self-test: each
    {!Grid_obs.Monitor.violation_class} can be provoked on demand, and a
    healthy monitor must report exactly that class with the offending
    correlation chain. *)

type fault_level =
  | No_faults
  | Light  (** 1% drops, light duplication and delay *)
  | Heavy  (** 5% drops, heavy delay, torn writes on the store's disk *)

val fault_level_to_string : fault_level -> string

type pep_backend =
  | Flat_file_pep  (** the compiled flat-file policy index *)
  | Rebac_pep  (** the relationship-based (Zanzibar-style) PEP *)

val pep_backend_to_string : pep_backend -> string
(** The backend label stamped on decision events ("flat_file"/"rebac"). *)

type config = {
  days : float;  (** campaign length in simulated days *)
  jobs_per_day : int;  (** baseline Poisson arrival volume *)
  seed : int;  (** drives arrivals, faults and all choices *)
  faults : fault_level;
  monitor : bool;  (** [false] runs monitor-less (for overhead baselines) *)
  inject : Grid_obs.Monitor.violation_class option;
  propagation_window : float;  (** revocation grace period, seconds *)
  pep : pep_backend;
      (** which PEP answers callouts; the monitor's oracle re-derives
          answers through the matching engine either way *)
  batch : int;
      (** [1] (the default) sends each management follow-up over the
          wire individually; [N > 1] coalesces follow-ups and authorizes
          them [N] at a time through
          {!Grid_gram.Resource.manage_many_direct}. *)
  resources : int;
      (** [1] (the default) keeps the original single-site campaign.
          [N > 1] federates [N] full members ("soak-site",
          "soak-site-1", ...) behind a shared MDS directory and broker:
          capacity-aware placement with seeded tie-breaks, per-member
          PEP/cache/store/disk, staggered policy reloads at each churn
          point (mixed epochs in flight, judged exactly by the oracle
          history), and crash bursts rotating across members. *)
  tokens : Grid_sts.Validator.mode option;
      (** [None] (the default) keeps the original proxy-path campaign.
          [Some mode] runs it tokenized: one {!Grid_sts.Service} mints
          audience-bound capability tokens through its default
          permissive relation, every user's proxy carries one as a
          certificate extension, each member gates its callout behind a
          token-validating PEP with a per-member validator fed per
          [mode], renewal becomes refresh-before-expiry against the STS
          escrow at 80% of the token TTL, and the mid-campaign
          revocation lands at the STS ({!Grid_sts.Service.revoke_subject})
          instead of the CA trust store. The monitor's propagation
          window widens to the mode's enforcement bound when that is
          larger, so short-TTL enforcement-by-expiry is not
          misclassified. *)
}

val default_config : config
(** 3 days, 400 jobs/day, seed 42, light faults, monitor on, no
    injection, flat-file PEP, batch 1, one resource, no tokens. *)

type report = {
  submitted : int;
  accepted : int;
  denied : int;  (** authorization / authentication refusals *)
  failed : int;  (** other errors: RSL, mapping, system *)
  timed_out : int;
  management : int;
  management_denied : int;
  renewals : int;
  revocations : int;
  reloads : int;
  crashes : int;
  jobs_restored : int;
  events_checked : int;
  final_epoch : int option;
  violations : Grid_obs.Monitor.violation list;
}

val run : config -> report
(** Build the world, run the campaign to quiescence, flush the monitor's
    final tick and report. Deterministic in [config.seed]. *)

val violation_classes : report -> Grid_obs.Monitor.violation_class list
(** Distinct violation classes present in the report, sorted. *)

val pp_report : report Fmt.t
