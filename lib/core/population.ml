(* Population-scale subject synthesis.

   The fleet workload needs 10^5-10^6 distinct DNs without materializing
   per-user state: a synthesizer holds only the seed, the population
   size and a churn generation counter, and derives everything else —
   DN, group, credentials, RSL templates — on demand from the rank of a
   user. Activity is zipfian: a handful of head users dominate the
   stream while the long tail keeps the subject space far larger than
   any hot cache.

   Policy stays O(groups), not O(members): every synthesized DN lives
   under its group's DN prefix, and the policy language matches subjects
   by prefix ([Types.statement_applies]), so three grant statements
   cover the entire population — the shape the VOMS paper's
   group-membership attributes compile down to here. *)

type group = {
  name : string;
  jobtag : string;
  templates : string array; (* RSL bodies; simduration appended by callers *)
}

let groups =
  [| { name = "developers";
       jobtag = "POPDEV";
       templates =
         [| "&(executable=sweep)(directory=/sandbox/pop)(jobtag=POPDEV)(count=2)";
            "&(executable=filter)(directory=/sandbox/pop)(jobtag=POPDEV)";
            "&(executable=compile)(directory=/sandbox/pop)(jobtag=POPDEV)(count=3)" |] };
     { name = "analysts";
       jobtag = "POPANA";
       templates =
         [| "&(executable=TRANSP)(directory=/sandbox/pop)(jobtag=POPANA)(count=4)";
            "&(executable=TRANSP)(directory=/sandbox/pop)(jobtag=POPANA)" |] };
     { name = "admins";
       jobtag = "POPADM";
       templates =
         [| "&(executable=demo)(directory=/sandbox/pop)(jobtag=POPADM)";
            "&(executable=audit)(directory=/sandbox/pop)(jobtag=POPADM)" |] } |]

type t = {
  seed : int;
  size : int;
  tag : string;      (* seed-derived community tag baked into every DN *)
  ln_bound : float;  (* log (size + 1), precomputed for the sampler *)
  mutable generation : int;
}

(* SplitMix64 finalizer: the tag must differ across seeds but be stable
   for one, so two populations never share a subject space by accident. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed ~size =
  if size < 1 then invalid_arg "Population.create: size must be positive";
  { seed;
    size;
    tag = Printf.sprintf "%08Lx" (Int64.logand (mix (Int64.of_int seed)) 0xffffffffL);
    ln_bound = log (float_of_int (size + 1));
    generation = 0 }

let seed t = t.seed
let size t = t.size
let generation t = t.generation
let churn t = t.generation <- t.generation + 1

(* Group assignment is a pure function of the rank so it never needs
   storing: 60% developers, 30% analysts, 10% admins, interleaved so the
   zipf head covers all three groups. *)
let group_of_rank rank =
  let slot = rank mod 10 in
  if slot < 6 then groups.(0) else if slot < 9 then groups.(1) else groups.(2)

let organization t = Printf.sprintf "/O=Grid/O=Pop-%s" t.tag

let group_prefix t (g : group) = Printf.sprintf "/O=Grid/O=Pop-%s/OU=%s" t.tag g.name

let dn t rank =
  if rank < 0 || rank >= t.size then invalid_arg "Population.dn: rank out of range";
  Printf.sprintf "/O=Grid/O=Pop-%s/OU=%s/CN=u%06d" t.tag (group_of_rank rank).name rank

let group_name _t rank = (group_of_rank rank).name
let jobtag _t rank = (group_of_rank rank).jobtag

(* Zipf(s=1) rank via the continuous inverse CDF: the density 1/(r+1)
   integrates to ln(r+1), so rank = floor(exp(u * ln(N+1))) - 1 draws
   rank k with probability ~ ln((k+2)/(k+1)) ~ 1/(k+1). O(1) time and
   space — no harmonic table, which would be O(population) resident. *)
let sample t rng =
  let u = Grid_util.Rng.float rng 1.0 in
  let r = int_of_float (exp (u *. t.ln_bound)) - 1 in
  if r < 0 then 0 else if r >= t.size then t.size - 1 else r

let template _t rng rank =
  let g = group_of_rank rank in
  g.templates.(Grid_util.Rng.int rng (Array.length g.templates))

(* The first admin rank: the synthetic counterpart of the VO admin the
   fusion cast uses for third-party (jobtag) management. *)
let admin_rank t = if t.size > 9 then 9 else t.size - 1

let identity t ~ca ~now rank =
  Grid_gsi.Identity.create ~ca ~now (dn t rank)

(* --- Policy -------------------------------------------------------------

   Three prefix-addressed grant statements (plus a jobtag requirement on
   the community root) govern the whole population. The clauses are the
   same shapes [Grid_vo.Profile] compiles, but granted to the group
   prefix rather than expanded per member.

   Group/role churn: each [churn] bump regenerates the sources with the
   generation folded in — developers' count ceiling breathes (4 <-> 6),
   analysts gain a sanctioned post-processing executable on odd
   generations, and admins pick up the developers' tag only on even
   generations. Reloading a resource's PEP from [sources] mid-flight
   therefore changes live answers, which is exactly what the epoch
   machinery and decision caches must absorb. *)

let profile_for t (g : group) =
  let generation = t.generation in
  match g.name with
  | "developers" ->
    Grid_vo.Profile.make "developers"
      ~start_rules:
        [ Grid_vo.Profile.start_rule ~directory:"/sandbox/pop" ~jobtag:"POPDEV"
            ~max_count:(if generation land 1 = 0 then 4 else 6)
            [ "sweep"; "filter"; "compile" ] ]
  | "analysts" ->
    Grid_vo.Profile.make "analysts"
      ~start_rules:
        [ Grid_vo.Profile.start_rule ~directory:"/sandbox/pop" ~jobtag:"POPANA"
            ~max_count:5
            (if generation land 1 = 1 then [ "TRANSP"; "postproc" ] else [ "TRANSP" ]) ]
  | _ ->
    Grid_vo.Profile.make "admins"
      ~manage_tags:
        (if generation land 1 = 0 then [ "POPDEV"; "POPANA"; "POPADM" ]
         else [ "POPANA"; "POPADM" ])
      ~start_rules:
        [ Grid_vo.Profile.start_rule ~directory:"/sandbox/pop" ~jobtag:"POPADM"
            [ "demo"; "audit" ] ]

let policy t : Grid_policy.Types.t =
  let requirement =
    { Grid_policy.Types.kind = Grid_policy.Types.Requirement;
      subject_pattern = Grid_gsi.Dn.parse (organization t);
      clauses =
        [ [ { Grid_policy.Types.attribute = "action";
              op = Grid_rsl.Ast.Eq;
              values = [ Grid_policy.Types.Str "start" ] };
            { Grid_policy.Types.attribute = "jobtag";
              op = Grid_rsl.Ast.Neq;
              values = [ Grid_policy.Types.Null ] } ] ] }
  in
  requirement
  :: (Array.to_list groups
     |> List.map (fun g ->
            { Grid_policy.Types.kind = Grid_policy.Types.Grant;
              subject_pattern = Grid_gsi.Dn.parse (group_prefix t g);
              clauses = Grid_vo.Profile.to_clauses (profile_for t g) }))

let source t =
  Grid_policy.Combine.source
    ~name:(Printf.sprintf "population-%s-gen%d" t.tag t.generation)
    (policy t)

(* What a resource owner says about a guest community: its members may
   compute off the reserved queue, and management stays open for the
   community's own policy to settle. Combination is conjunctive with
   per-source default-deny, so a resource admitting the population must
   append these statements to its owner policy — a source that never
   mentions the community's prefix denies it wholesale. *)
let owner_policy t : Grid_policy.Types.t =
  let subject_pattern = Grid_gsi.Dn.parse (organization t) in
  let action_is v =
    { Grid_policy.Types.attribute = "action";
      op = Grid_rsl.Ast.Eq;
      values = [ Grid_policy.Types.Str v ] }
  in
  [ { Grid_policy.Types.kind = Grid_policy.Types.Grant;
      subject_pattern;
      clauses =
        [ [ action_is "start";
            { Grid_policy.Types.attribute = "queue";
              op = Grid_rsl.Ast.Neq;
              values = [ Grid_policy.Types.Str "reserved" ] } ] ] };
    { Grid_policy.Types.kind = Grid_policy.Types.Grant;
      subject_pattern;
      clauses =
        [ [ action_is "cancel" ]; [ action_is "information" ]; [ action_is "signal" ] ] } ]
