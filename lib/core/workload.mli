(** Synthetic workload generation: reproducible Poisson job streams with
    follow-up management actions, for stress tests and throughput
    benchmarks. *)

type user_profile = {
  identity : Grid_gsi.Identity.t;
  rsl_templates : string list;
  weight : int;
}

type config = {
  arrival_rate : float;
  job_count : int;
  management_probability : float;
  management_batch : int;
      (** [1] (the default) sends each management follow-up over the
          wire as before; [N > 1] coalesces follow-ups and authorizes
          them [N] at a time through
          {!Grid_gram.Resource.manage_many_direct} — the batch decision
          pipeline. *)
  seed : int;
}

val default_config : config
(** 1 job/s, 100 jobs, 30% management follow-ups, batch 1, seed 42. *)

type stats = {
  mutable submitted : int;
  mutable accepted : int;
  mutable denied_authorization : int;
  mutable denied_other : int;
  mutable timed_out : int;  (** requests that hit the per-request deadline *)
  mutable management_requests : int;
  mutable management_denied : int;
}

val pp_stats : stats Fmt.t

val run :
  ?sts:Grid_sts.Service.t ->
  engine:Grid_sim.Engine.t ->
  resource:Grid_gram.Resource.t ->
  profiles:user_profile list ->
  config ->
  stats
(** Schedule the whole arrival stream, drain the engine, and tally the
    outcomes. Deterministic for a given seed. Pass [sts] when the
    resource runs tokenized: the service's validators are quiesced after
    the stream settles so a pull-mode CRL poll loop cannot keep the
    engine from draining. *)

(** {1 Population-scale workloads over a fleet} *)

type population_config = {
  pop_arrival_rate : float;
  pop_job_count : int;
  pop_management_probability : float;
  pop_management_batch : int;
      (** [1] routes each follow-up over the owning member's network;
          [N > 1] coalesces follow-ups and flushes them through
          {!Fleet.manage_many}. *)
  cross_admin_probability : float;
      (** share of follow-ups issued by the community admin instead of
          the job owner — the cross-resource third-party manager flow *)
  churn_points : float list;
      (** fractions of the arrival span at which the population's
          generation advances and every member reloads, staggered *)
  reload_stagger : float;  (** seconds between successive member reloads *)
  pop_seed : int;
}

val default_population_config : population_config
(** 20 jobs/s, 2000 jobs, 25% management (20% of those cross-admin),
    churn at 35% and 70% of the span with 5 s reload stagger, seed 42. *)

type population_stats = {
  tally : stats;
  mutable unplaceable : int;  (** discovery produced no candidate *)
  mutable cross_admin_requests : int;
  mutable churns : int;
  mutable reloads : int;  (** per-member reload events performed *)
  mutable distinct_subjects : int;  (** distinct population ranks seen *)
  per_resource_accepted : (string, int) Hashtbl.t;
  mutable latencies : float list;
      (** simulated submit->reply time of every placement attempt,
          newest first *)
}

val latency_percentile : population_stats -> float -> float option
(** [latency_percentile stats q] is the [q]-quantile ([0, 1]) of the
    recorded placement latencies; [None] before any reply. *)

val pp_population_stats : population_stats Fmt.t

val run_population :
  ?sts:Grid_sts.Service.t ->
  fleet:Fleet.t ->
  population:Population.t ->
  ca:Grid_gsi.Ca.t ->
  population_config ->
  population_stats
(** Drive the fleet with a zipfian population stream: identities are
    minted per arrival (resident credential state stays O(active jobs)),
    placement goes through the fleet's asynchronous brokered lane,
    management follow-ups route cross-resource, and churn points swap
    policy generations mid-flight. Deterministic for a given seed.
    Quiesces the fleet's providers before returning. [sts] exchanges
    each arrival's identity for a token-carrying proxy first — pair it
    with a fleet built over the same service ([Fleet.create ?sts]). *)
