(** Synthetic workload generation: reproducible Poisson job streams with
    follow-up management actions, for stress tests and throughput
    benchmarks. *)

type user_profile = {
  identity : Grid_gsi.Identity.t;
  rsl_templates : string list;
  weight : int;
}

type config = {
  arrival_rate : float;
  job_count : int;
  management_probability : float;
  management_batch : int;
      (** [1] (the default) sends each management follow-up over the
          wire as before; [N > 1] coalesces follow-ups and authorizes
          them [N] at a time through
          {!Grid_gram.Resource.manage_many_direct} — the batch decision
          pipeline. *)
  seed : int;
}

val default_config : config
(** 1 job/s, 100 jobs, 30% management follow-ups, batch 1, seed 42. *)

type stats = {
  mutable submitted : int;
  mutable accepted : int;
  mutable denied_authorization : int;
  mutable denied_other : int;
  mutable timed_out : int;  (** requests that hit the per-request deadline *)
  mutable management_requests : int;
  mutable management_denied : int;
}

val pp_stats : stats Fmt.t

val run :
  engine:Grid_sim.Engine.t ->
  resource:Grid_gram.Resource.t ->
  profiles:user_profile list ->
  config ->
  stats
(** Schedule the whole arrival stream, drain the engine, and tally the
    outcomes. Deterministic for a given seed. *)
