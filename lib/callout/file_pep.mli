(** Flat-file policy evaluation point: the paper's prototype PEP.

    Queries evaluate through the compiled policy index
    ({!Grid_policy.Compile}); {!reference} keeps the uncompiled scan for
    differential testing and benchmarking. *)

(** A PEP holding compiled policy sources, reloadable in place. Its
    {!Compiled.epoch} is the newest policy epoch across the sources and
    strictly increases on every {!Compiled.reload} — the invalidation
    signal for {!Cache}. *)
module Compiled : sig
  type t

  val create : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> t
  val callout : t -> Callout.t

  val batch : t -> Callout.Batch.t
  (** Native batch lane: one amortized pass over the compiled sources
      per batch ({!Grid_policy.Combine.evaluate_compiled_many}), with
      denial decisions interned so repeated reasons share one rendered
      message. Element-wise equal to mapping {!callout} over the batch,
      in request order. *)

  val epoch : t -> int

  val sources : t -> Grid_policy.Combine.source list
  (** The current (uncompiled) sources, e.g. for {!advice}. *)

  val reload : t -> Grid_policy.Combine.source list -> unit
  (** Swap in new policy text: recompiles every source and bumps the
      epoch, so cached decisions against the old policy die. *)
end

val of_sources : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> Callout.t
(** Conjunctive evaluation over named policy sources (compiled once at
    construction); denial messages name the denying source. [obs] spans
    and counts each per-source policy evaluation. *)

val reference : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> Callout.t
(** The uncompiled evaluation path ([Combine.evaluate] per query):
    answers exactly what {!of_sources} answers, at pre-index cost. *)

val of_policy : ?obs:Grid_obs.Obs.t -> name:string -> Grid_policy.Types.t -> Callout.t

val advice :
  Grid_policy.Combine.source list ->
  Callout.query ->
  Grid_policy.Types.clause option
(** The conjunction of the clauses on which a permit decision rested
    (one per source); [None] when the request is not permitted. Feed to
    [Grid_accounts.Sandbox.of_policy_clause] for policy-derived
    enforcement. *)

val of_texts : ?obs:Grid_obs.Obs.t -> (string * string) list -> Callout.t
(** Build a PEP from (source name, policy text) pairs. Unparseable or
    invalid policy text yields a PEP that fails closed with
    [System_error] on every query. *)
