(** Flat-file policy evaluation point: the paper's prototype PEP. *)

val of_sources : ?obs:Grid_obs.Obs.t -> Grid_policy.Combine.source list -> Callout.t
(** Conjunctive evaluation over named policy sources; denial messages name
    the denying source. [obs] spans and counts each per-source policy
    evaluation. *)

val of_policy : ?obs:Grid_obs.Obs.t -> name:string -> Grid_policy.Types.t -> Callout.t

val advice :
  Grid_policy.Combine.source list ->
  Callout.query ->
  Grid_policy.Types.clause option
(** The conjunction of the clauses on which a permit decision rested
    (one per source); [None] when the request is not permitted. Feed to
    [Grid_accounts.Sandbox.of_policy_clause] for policy-derived
    enforcement. *)

val of_texts : ?obs:Grid_obs.Obs.t -> (string * string) list -> Callout.t
(** Build a PEP from (source name, policy text) pairs. Unparseable or
    invalid policy text yields a PEP that fails closed with
    [System_error] on every query. *)
