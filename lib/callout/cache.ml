(* Bounded LRU cache over authorization callout decisions.

   The callout runs before job creation and before every management
   action on a running job (Section 5.2), so the same (requester, action,
   job) question is asked over and over while a job is polled. Entries
   are keyed on everything the flat-file PEP's answer can depend on —
   requester DN, action, job id, jobtag, jobowner, a stable fingerprint
   of the submitted RSL — plus the policy epoch, so a policy reload
   (epoch bump, see Compile) orphans every prior entry by construction.

   Safety rules, in decreasing order of importance:

     - Only definite answers are cached: [Ok ()] and [Denied]. A
       [System_error]/[Bad_configuration] is a statement about the
       authorization system's health, not about policy, and must be
       re-tried at the backend every time. For the same reason the
       fail-open degradation combinator must wrap *outside* the cache —
       composed that way, a degraded permit is a conversion applied to an
       uncached error and can never be stored.

     - An expired (or not-yet-valid) requester credential bypasses the
       cache entirely: the authentication layer owns that refusal, and a
       cached permit must not outlive the proof that earned it. Entries
       written under a live credential expire no later than the
       credential's chain does.

     - TTL is simulated time ([now] is typically the engine clock), so
       expiry is deterministic in tests and benches.

   The LRU is an intrusive doubly-linked list over the hash table's
   nodes: hit, insert and eviction are all O(1). *)

type node = {
  key : string;
  value : Callout.decision;
  expires_at : float;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  ttl : float;
  now : unit -> float;
  epoch : (unit -> int) option;
  revision : (unit -> int) option;
  extra_deadline : Grid_gsi.Credential.t -> float option;
  revoked : Grid_gsi.Credential.t -> bool;
  obs : Grid_obs.Obs.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable last_epoch : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable bypasses : int;
}

let create ?(capacity = 1024) ?(ttl = 300.0) ?(obs = Grid_obs.Obs.noop) ?epoch ?revision
    ?(extra_deadline = fun _ -> None) ?(revoked = fun _ -> false) ~now () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  if ttl <= 0.0 then invalid_arg "Cache.create: ttl must be positive";
  { capacity;
    ttl;
    now;
    epoch;
    revision;
    extra_deadline;
    revoked;
    obs;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    last_epoch = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    bypasses = 0 }

let capacity t = t.capacity
let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations
let bypasses t = t.bypasses

(* --- Intrusive LRU list ------------------------------------------------ *)

let detach t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove_node t node =
  detach t node;
  Hashtbl.remove t.table node.key

(* --- Metrics ----------------------------------------------------------- *)

let note_size t =
  Grid_obs.Obs.set_gauge t.obs "authz_cache_size" (float_of_int (Hashtbl.length t.table))

let note_eviction t =
  t.evictions <- t.evictions + 1;
  Grid_obs.Obs.incr t.obs "authz_cache_evictions_total"

(* --- Invalidation ------------------------------------------------------ *)

let invalidate t =
  let n = Hashtbl.length t.table in
  if n > 0 then begin
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None;
    t.invalidations <- t.invalidations + n;
    Grid_obs.Obs.incr t.obs ~by:(float_of_int n) "authz_cache_invalidations_total";
    note_size t
  end

(* --- Keys -------------------------------------------------------------- *)

(* One-slot physical-equality memo: workload generators and the job
   manager hold on to the same clause value across the repeated queries
   of a job's lifetime, so the (allocating) rendering happens once per
   clause instead of once per lookup. Structural behavior is unchanged —
   a memo hit returns the identical string the rendering would. *)
let rsl_fingerprint_memo : (Grid_rsl.Ast.clause * string) option ref = ref None

let rsl_fingerprint = function
  | None -> ""
  | Some clause -> begin
    match !rsl_fingerprint_memo with
    | Some (c, s) when c == clause -> s
    | _ ->
      let s = Grid_rsl.Ast.clause_to_string clause in
      rsl_fingerprint_memo := Some (clause, s);
      s
  end

(* Length-prefixed part encoding. Joining components with a separator
   byte is not injective once a component can contain that byte (a
   hand-built DN value may hold any byte, including '\x00' and '\x01'),
   and two different queries must never share a key — a collision here
   is a cross-principal cache hit. [<len>.<bytes>] is unambiguous
   whatever the bytes are; the key-collision QCheck suite in
   [test_callout] pins this. *)
let add_part buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf '.';
  Buffer.add_string buf s

(* Component-wise DN encoding (values may contain '/', '=', or any
   separator byte). *)
let dn_key (dn : Grid_gsi.Dn.t) =
  let buf = Buffer.create 64 in
  List.iter
    (fun (r : Grid_gsi.Dn.rdn) ->
      add_part buf r.attr;
      add_part buf r.value)
    dn;
  Buffer.contents buf

let opt_key f = function None -> "-" | Some v -> "+" ^ f v

(* Built into one buffer — byte-identical to length-prefix-encoding each
   part and concatenating (the encoding test_callout pins), without the
   intermediate part list and per-part strings. *)
let query_key ~scope ~epoch ?revision (q : Callout.query) =
  let buf = Buffer.create 96 in
  add_part buf scope;
  add_part buf (string_of_int epoch);
  add_part buf (opt_key string_of_int revision);
  add_part buf (dn_key q.requester);
  add_part buf (Grid_policy.Types.Action.to_string q.action);
  add_part buf (opt_key Fun.id q.job_id);
  add_part buf (opt_key Fun.id q.jobtag);
  add_part buf (opt_key dn_key q.job_owner);
  add_part buf (rsl_fingerprint q.rsl);
  Buffer.contents buf

(* --- Credential gate --------------------------------------------------- *)

let credential_live ~now (cred : Grid_gsi.Credential.t) =
  cred.chain <> []
  && List.for_all (fun c -> Grid_gsi.Cert.valid_at c ~now) cred.chain

let credential_deadline (cred : Grid_gsi.Credential.t) =
  List.fold_left
    (fun acc (c : Grid_gsi.Cert.t) -> Float.min acc c.not_after)
    infinity cred.chain

(* --- The combinator ---------------------------------------------------- *)

let cacheable : Callout.decision -> bool = function
  | Ok () | Error (Callout.Denied _) -> true
  | Error (Callout.System_error _ | Callout.Bad_configuration _) -> false

(* A policy reload bumped the epoch: every live entry is stale (its key
   carries the old epoch and can never be probed again), so flush and
   account the loss as invalidation. *)
let flush_on_epoch t epoch =
  (match t.last_epoch with
  | Some e when e <> epoch -> invalidate t
  | Some _ | None -> ());
  t.last_epoch <- Some epoch

(* A live node for [key], with past-deadline entries evicted in passing. *)
let probe t ~now key =
  match Hashtbl.find_opt t.table key with
  | Some node when now < node.expires_at -> Some node
  | Some node ->
    remove_node t node;
    note_eviction t;
    note_size t;
    None
  | None -> None

let serve_hit t ~scope ~epoch node =
  detach t node;
  push_front t node;
  t.hits <- t.hits + 1;
  Grid_obs.Obs.incr t.obs "authz_cache_hits_total";
  (* The epoch the cached answer was computed under equals the epoch
     in the probe key, so a hit served after a reload propagated is a
     stale-epoch violation the monitor can spot from this event. *)
  Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.hit"
    [ ("scope", scope); ("epoch", string_of_int epoch);
      ("outcome", Callout.outcome_label node.value) ];
  node.value

let store t ~now ~credential key decision =
  if cacheable decision then begin
    let deadline =
      match credential with
      | Some cred ->
        let d = Float.min (now +. t.ttl) (credential_deadline cred) in
        (* A credential can carry a grant (an STS token) that dies before
           the chain does; the entry must not outlive either. *)
        (match t.extra_deadline cred with
        | None -> d
        | Some extra -> Float.min d extra)
      | None -> now +. t.ttl
    in
    if deadline > now then begin
      if Hashtbl.length t.table >= t.capacity then begin
        match t.tail with
        | Some lru ->
          remove_node t lru;
          note_eviction t
        | None -> ()
      end;
      let node = { key; value = decision; expires_at = deadline; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node;
      note_size t
    end
  end

let with_cache t ?(scope = "authz") (backend : Callout.t) : Callout.t =
 fun q ->
  let now = t.now () in
  let epoch = match t.epoch with None -> 0 | Some f -> f () in
  (* Revision (tuple-store writes under the ReBAC PEP) participates in
     the key but does not flush: unlike an epoch bump — a wholesale
     policy replacement — a revision bump invalidates no *other*
     revision's entries, it just stops them being probed; the LRU ages
     them out. *)
  let revision = Option.map (fun f -> f ()) t.revision in
  flush_on_epoch t epoch;
  match q.Callout.requester_credential with
  | Some cred when not (credential_live ~now cred) ->
    (* Expired requester credential: the cache neither answers for it nor
       learns from it — the backend stack produces the authoritative
       result. *)
    t.bypasses <- t.bypasses + 1;
    Grid_obs.Obs.incr t.obs "authz_cache_bypass_total";
    Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.bypass"
      [ ("scope", scope); ("reason", "credential_expired") ];
    backend q
  | Some cred when t.revoked cred ->
    (* Revoked-but-unexpired credential: a permit cached before the
       revocation must not answer for it, and nothing learned now may
       outlive the next CRL read — so, like expiry, the backend stack
       owns the refusal. *)
    t.bypasses <- t.bypasses + 1;
    Grid_obs.Obs.incr t.obs "authz_cache_bypass_total";
    Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.bypass"
      [ ("scope", scope); ("reason", "credential_revoked") ];
    backend q
  | credential -> begin
    let key = query_key ~scope ~epoch ?revision q in
    match probe t ~now key with
    | Some node -> serve_hit t ~scope ~epoch node
    | None ->
      t.misses <- t.misses + 1;
      Grid_obs.Obs.incr t.obs "authz_cache_misses_total";
      Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.miss"
        [ ("scope", scope); ("epoch", string_of_int epoch) ];
      let decision = backend q in
      store t ~now ~credential key decision;
      decision
  end

(* --- Batched lookup ----------------------------------------------------- *)

(* One cache pass for a whole batch. The many lane classifies every
   query in one sweep — live credential + table hit is served on the
   spot; expired-credential bypasses and cache misses are collected into
   a single sub-batch for the backend's many lane, with within-batch
   duplicate keys collapsed onto one representative ask (a batch is one
   simulated instant: the sequential single-shot path would have served
   the duplicates from the entry the representative just stored, so
   collapsing answers identically for cacheable results and spares a
   failing backend the hammering for non-cacheable ones). Bypasses are
   never stored; representative answers are stored under the
   representative's credential deadline, exactly as single-shot. Answers
   scatter back by original index, so batch order is preserved. *)
let with_cache_many t ?(scope = "authz") (backend : Callout.Batch.t) : Callout.Batch.t =
  let single = with_cache t ~scope (Callout.Batch.callout backend) in
  let many (qs : Callout.query array) =
    let n = Array.length qs in
    let now = t.now () in
    let epoch = match t.epoch with None -> 0 | Some f -> f () in
    let revision = Option.map (fun f -> f ()) t.revision in
    flush_on_epoch t epoch;
    let results = Array.make n Callout.permitted in
    (* Sub-batch entries destined for the backend, reversed:
       (original index, key when this is a representative miss —
       [None] marks a credential bypass). *)
    let sub = ref [] in
    let sub_count = ref 0 in
    let rep_slot : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let dups = ref [] in
    let bypasses = ref 0 in
    let misses = ref 0 in
    for i = 0 to n - 1 do
      let q = qs.(i) in
      match q.Callout.requester_credential with
      | Some cred when not (credential_live ~now cred) ->
        incr bypasses;
        Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.bypass"
          [ ("scope", scope); ("reason", "credential_expired") ];
        sub := (i, None) :: !sub;
        incr sub_count
      | Some cred when t.revoked cred ->
        incr bypasses;
        Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.bypass"
          [ ("scope", scope); ("reason", "credential_revoked") ];
        sub := (i, None) :: !sub;
        incr sub_count
      | _ -> begin
        let key = query_key ~scope ~epoch ?revision q in
        match probe t ~now key with
        | Some node -> results.(i) <- serve_hit t ~scope ~epoch node
        | None -> begin
          match Hashtbl.find_opt rep_slot key with
          | Some slot -> dups := (i, slot) :: !dups
          | None ->
            incr misses;
            Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.miss"
              [ ("scope", scope); ("epoch", string_of_int epoch) ];
            Hashtbl.add rep_slot key !sub_count;
            sub := (i, Some key) :: !sub;
            incr sub_count
        end
      end
    done;
    let entries = Array.of_list (List.rev !sub) in
    if Array.length entries > 0 then begin
      let batch = Array.map (fun (i, _) -> qs.(i)) entries in
      let answers = Callout.Batch.evaluate_many backend batch in
      Array.iteri
        (fun slot (i, key_opt) ->
          let decision = answers.(slot) in
          results.(i) <- decision;
          match key_opt with
          | None -> () (* bypass: the cache never learns from it *)
          | Some key ->
            store t ~now ~credential:qs.(i).Callout.requester_credential key decision)
        entries
    end;
    (* Fan representative answers out to within-batch duplicates; each
       counts as the hit it would have been on the sequential path. *)
    List.iter
      (fun (i, slot) ->
        let rep_index, _ = entries.(slot) in
        let decision = results.(rep_index) in
        results.(i) <- decision;
        t.hits <- t.hits + 1;
        Grid_obs.Obs.incr t.obs "authz_cache_hits_total";
        Grid_obs.Obs.emit t.obs ~layer:"cache" "cache.hit"
          [ ("scope", scope); ("epoch", string_of_int epoch);
            ("outcome", Callout.outcome_label decision) ])
      !dups;
    if !bypasses > 0 then begin
      t.bypasses <- t.bypasses + !bypasses;
      Grid_obs.Obs.incr t.obs ~by:(float_of_int !bypasses) "authz_cache_bypass_total"
    end;
    if !misses > 0 then begin
      t.misses <- t.misses + !misses;
      Grid_obs.Obs.incr t.obs ~by:(float_of_int !misses) "authz_cache_misses_total"
    end;
    results
  in
  Callout.Batch.make ~single ~many

let pp ppf t =
  let lookups = t.hits + t.misses in
  Fmt.pf ppf
    "authz decision cache: capacity=%d size=%d hits=%d misses=%d hit_rate=%s \
     evictions=%d invalidations=%d bypasses=%d"
    t.capacity (size t) t.hits t.misses
    (if lookups = 0 then "n/a"
     else Printf.sprintf "%.1f%%" (100.0 *. float_of_int t.hits /. float_of_int lookups))
    t.evictions t.invalidations t.bypasses
