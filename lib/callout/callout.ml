(* The GRAM authorization callout API (Section 5.2).

   The paper inserts a policy evaluation point into the Job Manager through
   a callout: a function invoked before creating a job manager request and
   before cancel/query/signal on a running job. The callout receives the
   credential of the requesting user, the credential (identity) of the user
   who started the job, the action, a unique job identifier and the RSL job
   description, and answers success or a typed authorization error. *)

type query = {
  requester : Grid_gsi.Dn.t;              (* authenticated grid identity *)
  requester_credential : Grid_gsi.Credential.t option;
  job_owner : Grid_gsi.Dn.t option;       (* initiator of the target job *)
  action : Grid_policy.Types.Action.t;
  job_id : string option;                 (* unique job identifier *)
  rsl : Grid_rsl.Ast.clause option;       (* job description, start only *)
  jobtag : string option;                 (* target job's tag, management *)
}

type error =
  | Denied of string
    (* the policy evaluated and said no *)
  | System_error of string
    (* the authorization system itself failed (paper: "authorization
       system failures" are distinguished from denials in the extended
       GRAM protocol errors) *)
  | Bad_configuration of string
    (* the callout could not even be located/loaded *)

type decision = (unit, error) result
type t = query -> decision

(* The shared permit. [Ok ()] is immutable, so one value can stand for
   every permitted decision — the batch pipeline returns this constant
   and allocates nothing on its hot (permitting) path. The PEPs likewise
   intern their recurring [Denied] values; see [File_pep]. *)
let permitted : decision = Ok ()

(* Rendering an error allocates (message concatenation), and the audit
   trail renders every denial on hot workload paths while the PEPs hand
   back physically shared (interned) error values. A one-slot
   physical-equality memo therefore collapses the rebuild to a pointer
   compare on repeats, without ever returning a stale string for a
   structurally-equal-but-distinct error. *)
let error_to_string_memo : (error * string) option ref = ref None

let error_to_string e =
  match !error_to_string_memo with
  | Some (e', s) when e' == e -> s
  | _ ->
    let s =
      match e with
      | Denied m -> "authorization denied: " ^ m
      | System_error m -> "authorization system failure: " ^ m
      | Bad_configuration m -> "authorization callout misconfigured: " ^ m
    in
    error_to_string_memo := Some (e, s);
    s

let pp_error ppf e = Fmt.string ppf (error_to_string e)

(* --- Query construction ----------------------------------------------- *)

(* The one smart constructor behind every query. The historical pair
   [start_query]/[management_query] survives as thin wrappers; new code
   states its intent through the variant instead of remembering which
   optional fields a start or a management question may carry. *)
module Query = struct
  type intent =
    | Start of Grid_rsl.Ast.clause
      (* job submission: the callout sees the full RSL job description *)
    | Management of {
        action : Grid_policy.Types.Action.t;
        job_owner : Grid_gsi.Dn.t;
        jobtag : string option;
      }
      (* cancel/query/signal on a running job: the callout sees the
         target job's initiator and tag instead of the RSL *)

  let make ~requester ?credential ?job_id intent =
    match intent with
    | Start rsl ->
      { requester; requester_credential = credential; job_owner = None;
        action = Grid_policy.Types.Action.Start; job_id; rsl = Some rsl; jobtag = None }
    | Management { action; job_owner; jobtag } ->
      { requester; requester_credential = credential; job_owner = Some job_owner;
        action; job_id; rsl = None; jobtag }
end

let start_query ~requester ?credential ~job_id ~rsl () =
  Query.make ~requester ?credential ~job_id (Query.Start rsl)

let management_query ~requester ?credential ~action ~job_id ~job_owner ~jobtag () =
  Query.make ~requester ?credential ~job_id (Query.Management { action; job_owner; jobtag })

(* Translate a callout query into a policy-engine request. *)
let to_policy_request (q : query) : Grid_policy.Types.request =
  { Grid_policy.Types.subject = q.requester;
    action = q.action;
    job = q.rsl;
    jobowner = q.job_owner;
    jobtag = q.jobtag }

(* --- Combinators ---------------------------------------------------- *)

(* Every callout in the list must authorize (the multi-PEP conjunction of
   the interaction model: local policy AND VO policy). *)
let all (callouts : t list) : t =
 fun q ->
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> begin
      match c q with
      | Ok () -> go rest
      | Error _ as e -> e
    end
  in
  if callouts = [] then Error (Bad_configuration "no authorization callouts configured")
  else go callouts

let permit_all : t = fun _ -> Ok ()

let deny_all ~reason : t = fun _ -> Error (Denied reason)

let failing ~message : t = fun _ -> Error (System_error message)

(* Instrumentation wrapper: count invocations (benchmarks, tests). *)
let counting (c : t) : t * (unit -> int) =
  let n = ref 0 in
  ( (fun q ->
      incr n;
      c q),
    fun () -> !n )

(* --- Batched decisions ------------------------------------------------- *)

(* The batch decision API. A [Batch.t] carries two lanes over the same
   policy: the single-shot callout every existing integration keeps
   using, and [evaluate_many], which answers a whole query array in one
   call so a backend can amortize — sort by subject for index locality,
   dedupe policy-identical questions, reuse evaluation scratch state —
   where the single-shot path pays per decision.

   Contract: [evaluate_many b qs] answers element-wise exactly what
   [Array.map (callout b) qs] would (decision and reason), and
   [results.(i)] always answers [qs.(i)] — internal partitioning or
   reordering never leaks into the returned array. The QCheck suite in
   [test_batch] holds every backend to both properties. *)
module Batch = struct
  type callout = t

  type t = {
    single : callout;
    many : query array -> decision array;
  }

  (* A native batch implementation: [many] must agree element-wise with
     [single]. *)
  let make ~single ~many = { single; many }

  (* The derived fallback: any plain callout becomes a batch by mapping
     the single-shot path — no amortization, full compatibility. *)
  let of_callout (c : callout) = { single = c; many = (fun qs -> Array.map c qs) }

  let callout b = b.single
  let check b q = b.single q
  let evaluate_many b qs = if Array.length qs = 0 then [||] else b.many qs
end

(* Full observability wrapper: the callout is the paper's PEP seam, so this
   is where every authorization decision is counted and timed. The span
   nests under whatever stage is current (the JMI's start/manage span),
   and the decision lands in authz_decisions_total split by action,
   outcome and backend. *)
(* The label vocabulary is a fixed four-element set; labels are drawn
   from one interned array so [outcome_label] never allocates and every
   metric carrying an outcome shares the same string values. *)
let outcome_labels = [| "permitted"; "denied"; "system_error"; "bad_configuration" |]

let outcome_index : decision -> int = function
  | Ok () -> 0
  | Error (Denied _) -> 1
  | Error (System_error _) -> 2
  | Error (Bad_configuration _) -> 3

let outcome_label (d : decision) : string = outcome_labels.(outcome_index d)

(* --- Resilience combinators ------------------------------------------ *)

(* The callout runs synchronously inside one simulation event, so a
   "timeout" is modelled by sampling the backend's would-be latency and
   comparing it against the budget: a slow backend yields System_error
   without the caller ever blocking. *)
let with_timeout ?(obs = Grid_obs.Obs.noop) ~budget ~latency (c : t) : t =
 fun q ->
  let sampled = latency () in
  if sampled > budget then begin
    Grid_obs.Obs.incr obs "authz_timeouts_total";
    Error
      (System_error
         (Printf.sprintf "authorization callout timed out (%.3fs > %.3fs budget)" sampled
            budget))
  end
  else c q

(* Retry transient backend failures. Only [System_error] is retried:
   [Denied] is a definite answer and [Bad_configuration] will not heal by
   itself. Retries happen within the same simulation instant (the JMI
   blocks on the callout), so only the attempt count of [policy] matters
   here — backoff pacing applies to the networked client path. *)
let with_retry ?(obs = Grid_obs.Obs.noop) ?(policy = Grid_util.Retry.default) (c : t) : t =
 fun q ->
  let rec go attempt =
    match c q with
    | Error (System_error _) when attempt < policy.Grid_util.Retry.max_attempts ->
      Grid_obs.Obs.incr obs "authz_retries_total";
      go (attempt + 1)
    | decision -> decision
  in
  go 1

(* A circuit breaker in front of a callout: while open, answer
   System_error immediately instead of hammering a failing backend.
   Denials count as backend-healthy responses — the policy engine
   answered, it just said no. *)
let with_breaker ~breaker ~now (c : t) : t =
 fun q ->
  if not (Grid_util.Retry.Breaker.allow breaker ~now:(now ())) then
    Error (System_error "authorization backend circuit open")
  else begin
    let decision = c q in
    (match decision with
    | Ok () | Error (Denied _) -> Grid_util.Retry.Breaker.success breaker ~now:(now ())
    | Error (System_error _ | Bad_configuration _) ->
      Grid_util.Retry.Breaker.failure breaker ~now:(now ()));
    decision
  end

let breaker ?failure_threshold ?cooldown ?(obs = Grid_obs.Obs.noop) () =
  Grid_util.Retry.Breaker.create ?failure_threshold ?cooldown
    ~on_transition:(fun ~now:_ from into ->
      Grid_obs.Obs.incr obs
        ~labels:
          [ ("from", Grid_util.Retry.Breaker.state_to_string from);
            ("to", Grid_util.Retry.Breaker.state_to_string into) ]
        "authz_breaker_transitions_total")
    ()

type degradation =
  | Fail_open
  | Fail_closed

let degradation_label = function Fail_open -> "fail_open" | Fail_closed -> "fail_closed"

(* Explicit degradation policy for backend outages. Only infrastructure
   failures (System_error / Bad_configuration) are degradable — a Denied
   is a policy answer and is never overridden. The default everywhere is
   Fail_closed, preserving the paper's default-deny stance: an
   unreachable authorization service must not grant access. Fail_open is
   for callers who decide availability beats enforcement on some
   non-critical decision point, and every such conversion is counted. *)
let degrade ?(obs = Grid_obs.Obs.noop) mode (c : t) : t =
 fun q ->
  match c q with
  | Ok () -> Ok ()
  | Error (Denied _) as denial -> denial
  | Error (System_error _ | Bad_configuration _) as outage -> begin
    Grid_obs.Obs.incr obs
      ~labels:[ ("mode", degradation_label mode) ]
      "authz_degraded_total";
    let final = match mode with Fail_open -> Ok () | Fail_closed -> outage in
    (* The safety monitor watches this event: a fail_closed degradation
       whose [final] is "permitted" is an invariant violation by
       construction — emitting both sides makes the upgrade detectable
       instead of trusting this combinator. *)
    Grid_obs.Obs.emit obs ~layer:"callout" "authz.degraded"
      [ ("mode", degradation_label mode);
        ("original", outcome_label outage);
        ("final", outcome_label final) ];
    final
  end

(* Deterministic fault injector for chaos tests: fail with System_error at
   the given probability, sampling from the caller's seeded stream. *)
let flaky ~rng ~failure_probability (c : t) : t =
  if failure_probability < 0.0 || failure_probability > 1.0 then
    invalid_arg "Callout.flaky: failure_probability must be a probability";
  fun q ->
    if
      failure_probability > 0.0
      && Grid_util.Rng.float rng 1.0 < failure_probability
    then Error (System_error "injected authorization backend fault")
    else c q

(* Earliest expiry across the presented chain: the instant after which
   no decision may rest on this credential. *)
let credential_expiry (cred : Grid_gsi.Credential.t) =
  match cred.Grid_gsi.Credential.chain with
  | [] -> None
  | chain ->
    Some
      (List.fold_left
         (fun acc (c : Grid_gsi.Cert.t) -> Float.min acc c.Grid_gsi.Cert.not_after)
         infinity chain)

(* The wide event every authorization decision leaves behind. It carries
   everything the online safety monitor needs to re-derive the answer:
   the full request (subject, action, rsl, jobowner, jobtag), the policy
   epoch the decision was made under, and the credential's expiry. *)
let decision_attrs ?epoch ~backend ~action (q : query) decision =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  [ ("backend", backend); ("action", action); ("outcome", outcome_label decision);
    ("subject", Grid_gsi.Dn.to_string q.requester) ]
  @ (match epoch with
    | None -> []
    | Some epoch -> [ ("epoch", string_of_int (epoch ())) ])
  @ opt "job_id" Fun.id q.job_id
  @ opt "jobtag" Fun.id q.jobtag
  @ opt "jobowner" Grid_gsi.Dn.to_string q.job_owner
  @ opt "rsl" Grid_rsl.Ast.clause_to_string q.rsl
  @ opt "cred_expiry" (Printf.sprintf "%.3f")
      (Option.bind q.requester_credential credential_expiry)

(* Metric label lists for the instrumented hot path, preallocated per
   (action, outcome) when the wrapper is built: the action and outcome
   vocabularies are closed, so the per-decision cost is two array loads
   instead of a fresh three-pair association list per call. *)
let action_slot : Grid_policy.Types.Action.t -> int = function
  | Grid_policy.Types.Action.Start -> 0
  | Grid_policy.Types.Action.Cancel -> 1
  | Grid_policy.Types.Action.Information -> 2
  | Grid_policy.Types.Action.Signal -> 3

let decision_label_table ~backend =
  let actions = Array.of_list Grid_policy.Types.Action.all in
  Array.map
    (fun action ->
      let action = Grid_policy.Types.Action.to_string action in
      Array.map
        (fun outcome -> [ ("backend", backend); ("action", action); ("outcome", outcome) ])
        outcome_labels)
    actions

let span_attr_table ~backend =
  Array.of_list
    (List.map
       (fun action ->
         [ ("backend", backend); ("action", Grid_policy.Types.Action.to_string action) ])
       Grid_policy.Types.Action.all)

let instrument ?(backend = "pep") ?epoch ~obs (c : t) : t =
  if not (Grid_obs.Obs.enabled obs) then c
  else begin
    let labels = decision_label_table ~backend in
    let span_attrs = span_attr_table ~backend in
    fun q ->
      let slot = action_slot q.action in
      let action = Grid_policy.Types.Action.to_string q.action in
      let decision =
        Grid_obs.Obs.with_span obs ~attrs:span_attrs.(slot) "authz.callout"
          (fun span ->
            let decision = c q in
            Grid_obs.Span.set_attr span "outcome" (outcome_label decision);
            decision)
      in
      Grid_obs.Obs.incr obs ~labels:labels.(slot).(outcome_index decision)
        "authz_decisions_total";
      Grid_obs.Obs.emit obs ~layer:"callout" "authz.decision"
        (decision_attrs ?epoch ~backend ~action q decision);
      decision
  end

(* Batched sibling of {!instrument}. The whole batch runs under one
   ["authz.batch"] span; counters are incremented in bulk per
   (action, outcome) cell, but the ["authz.decision"] wide event is
   still emitted per decision — the online safety monitor re-derives
   each answer from that record, so batching must not thin it out. *)
let instrument_batch ?(backend = "pep") ?epoch ~obs (b : Batch.t) : Batch.t =
  if not (Grid_obs.Obs.enabled obs) then b
  else begin
    let single = instrument ~backend ?epoch ~obs (Batch.callout b) in
    let labels = decision_label_table ~backend in
    let many qs =
      let n = Array.length qs in
      let decisions =
        Grid_obs.Obs.with_span obs
          ~attrs:[ ("backend", backend); ("size", string_of_int n) ]
          "authz.batch"
          (fun _ -> b.Batch.many qs)
      in
      let counts = Array.make_matrix 4 (Array.length outcome_labels) 0 in
      Array.iteri
        (fun i q ->
          let decision = decisions.(i) in
          let a = action_slot q.action and o = outcome_index decision in
          counts.(a).(o) <- counts.(a).(o) + 1;
          Grid_obs.Obs.emit obs ~layer:"callout" "authz.decision"
            (decision_attrs ?epoch ~backend
               ~action:(Grid_policy.Types.Action.to_string q.action)
               q decision))
        qs;
      Array.iteri
        (fun a per_outcome ->
          Array.iteri
            (fun o count ->
              if count > 0 then
                Grid_obs.Obs.incr obs ~by:(float_of_int count) ~labels:labels.(a).(o)
                  "authz_decisions_total")
            per_outcome)
        counts;
      decisions
    in
    Batch.make ~single ~many
  end
