(* The GRAM authorization callout API (Section 5.2).

   The paper inserts a policy evaluation point into the Job Manager through
   a callout: a function invoked before creating a job manager request and
   before cancel/query/signal on a running job. The callout receives the
   credential of the requesting user, the credential (identity) of the user
   who started the job, the action, a unique job identifier and the RSL job
   description, and answers success or a typed authorization error. *)

type query = {
  requester : Grid_gsi.Dn.t;              (* authenticated grid identity *)
  requester_credential : Grid_gsi.Credential.t option;
  job_owner : Grid_gsi.Dn.t option;       (* initiator of the target job *)
  action : Grid_policy.Types.Action.t;
  job_id : string option;                 (* unique job identifier *)
  rsl : Grid_rsl.Ast.clause option;       (* job description, start only *)
  jobtag : string option;                 (* target job's tag, management *)
}

type error =
  | Denied of string
    (* the policy evaluated and said no *)
  | System_error of string
    (* the authorization system itself failed (paper: "authorization
       system failures" are distinguished from denials in the extended
       GRAM protocol errors) *)
  | Bad_configuration of string
    (* the callout could not even be located/loaded *)

type decision = (unit, error) result
type t = query -> decision

let error_to_string = function
  | Denied m -> "authorization denied: " ^ m
  | System_error m -> "authorization system failure: " ^ m
  | Bad_configuration m -> "authorization callout misconfigured: " ^ m

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let start_query ~requester ?credential ~job_id ~rsl () =
  { requester; requester_credential = credential; job_owner = None;
    action = Grid_policy.Types.Action.Start; job_id = Some job_id; rsl = Some rsl;
    jobtag = None }

let management_query ~requester ?credential ~action ~job_id ~job_owner ~jobtag () =
  { requester; requester_credential = credential; job_owner = Some job_owner; action;
    job_id = Some job_id; rsl = None; jobtag }

(* Translate a callout query into a policy-engine request. *)
let to_policy_request (q : query) : Grid_policy.Types.request =
  { Grid_policy.Types.subject = q.requester;
    action = q.action;
    job = q.rsl;
    jobowner = q.job_owner;
    jobtag = q.jobtag }

(* --- Combinators ---------------------------------------------------- *)

(* Every callout in the list must authorize (the multi-PEP conjunction of
   the interaction model: local policy AND VO policy). *)
let all (callouts : t list) : t =
 fun q ->
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> begin
      match c q with
      | Ok () -> go rest
      | Error _ as e -> e
    end
  in
  if callouts = [] then Error (Bad_configuration "no authorization callouts configured")
  else go callouts

let permit_all : t = fun _ -> Ok ()

let deny_all ~reason : t = fun _ -> Error (Denied reason)

let failing ~message : t = fun _ -> Error (System_error message)

(* Instrumentation wrapper: count invocations (benchmarks, tests). *)
let counting (c : t) : t * (unit -> int) =
  let n = ref 0 in
  ( (fun q ->
      incr n;
      c q),
    fun () -> !n )

(* Full observability wrapper: the callout is the paper's PEP seam, so this
   is where every authorization decision is counted and timed. The span
   nests under whatever stage is current (the JMI's start/manage span),
   and the decision lands in authz_decisions_total split by action,
   outcome and backend. *)
let outcome_label : decision -> string = function
  | Ok () -> "permitted"
  | Error (Denied _) -> "denied"
  | Error (System_error _) -> "system_error"
  | Error (Bad_configuration _) -> "bad_configuration"

(* --- Resilience combinators ------------------------------------------ *)

(* The callout runs synchronously inside one simulation event, so a
   "timeout" is modelled by sampling the backend's would-be latency and
   comparing it against the budget: a slow backend yields System_error
   without the caller ever blocking. *)
let with_timeout ?(obs = Grid_obs.Obs.noop) ~budget ~latency (c : t) : t =
 fun q ->
  let sampled = latency () in
  if sampled > budget then begin
    Grid_obs.Obs.incr obs "authz_timeouts_total";
    Error
      (System_error
         (Printf.sprintf "authorization callout timed out (%.3fs > %.3fs budget)" sampled
            budget))
  end
  else c q

(* Retry transient backend failures. Only [System_error] is retried:
   [Denied] is a definite answer and [Bad_configuration] will not heal by
   itself. Retries happen within the same simulation instant (the JMI
   blocks on the callout), so only the attempt count of [policy] matters
   here — backoff pacing applies to the networked client path. *)
let with_retry ?(obs = Grid_obs.Obs.noop) ?(policy = Grid_util.Retry.default) (c : t) : t =
 fun q ->
  let rec go attempt =
    match c q with
    | Error (System_error _) when attempt < policy.Grid_util.Retry.max_attempts ->
      Grid_obs.Obs.incr obs "authz_retries_total";
      go (attempt + 1)
    | decision -> decision
  in
  go 1

(* A circuit breaker in front of a callout: while open, answer
   System_error immediately instead of hammering a failing backend.
   Denials count as backend-healthy responses — the policy engine
   answered, it just said no. *)
let with_breaker ~breaker ~now (c : t) : t =
 fun q ->
  if not (Grid_util.Retry.Breaker.allow breaker ~now:(now ())) then
    Error (System_error "authorization backend circuit open")
  else begin
    let decision = c q in
    (match decision with
    | Ok () | Error (Denied _) -> Grid_util.Retry.Breaker.success breaker ~now:(now ())
    | Error (System_error _ | Bad_configuration _) ->
      Grid_util.Retry.Breaker.failure breaker ~now:(now ()));
    decision
  end

let breaker ?failure_threshold ?cooldown ?(obs = Grid_obs.Obs.noop) () =
  Grid_util.Retry.Breaker.create ?failure_threshold ?cooldown
    ~on_transition:(fun ~now:_ from into ->
      Grid_obs.Obs.incr obs
        ~labels:
          [ ("from", Grid_util.Retry.Breaker.state_to_string from);
            ("to", Grid_util.Retry.Breaker.state_to_string into) ]
        "authz_breaker_transitions_total")
    ()

type degradation =
  | Fail_open
  | Fail_closed

let degradation_label = function Fail_open -> "fail_open" | Fail_closed -> "fail_closed"

(* Explicit degradation policy for backend outages. Only infrastructure
   failures (System_error / Bad_configuration) are degradable — a Denied
   is a policy answer and is never overridden. The default everywhere is
   Fail_closed, preserving the paper's default-deny stance: an
   unreachable authorization service must not grant access. Fail_open is
   for callers who decide availability beats enforcement on some
   non-critical decision point, and every such conversion is counted. *)
let degrade ?(obs = Grid_obs.Obs.noop) mode (c : t) : t =
 fun q ->
  match c q with
  | Ok () -> Ok ()
  | Error (Denied _) as denial -> denial
  | Error (System_error _ | Bad_configuration _) as outage -> begin
    Grid_obs.Obs.incr obs
      ~labels:[ ("mode", degradation_label mode) ]
      "authz_degraded_total";
    let final = match mode with Fail_open -> Ok () | Fail_closed -> outage in
    (* The safety monitor watches this event: a fail_closed degradation
       whose [final] is "permitted" is an invariant violation by
       construction — emitting both sides makes the upgrade detectable
       instead of trusting this combinator. *)
    Grid_obs.Obs.emit obs ~layer:"callout" "authz.degraded"
      [ ("mode", degradation_label mode);
        ("original", outcome_label outage);
        ("final", outcome_label final) ];
    final
  end

(* Deterministic fault injector for chaos tests: fail with System_error at
   the given probability, sampling from the caller's seeded stream. *)
let flaky ~rng ~failure_probability (c : t) : t =
  if failure_probability < 0.0 || failure_probability > 1.0 then
    invalid_arg "Callout.flaky: failure_probability must be a probability";
  fun q ->
    if
      failure_probability > 0.0
      && Grid_util.Rng.float rng 1.0 < failure_probability
    then Error (System_error "injected authorization backend fault")
    else c q

(* Earliest expiry across the presented chain: the instant after which
   no decision may rest on this credential. *)
let credential_expiry (cred : Grid_gsi.Credential.t) =
  match cred.Grid_gsi.Credential.chain with
  | [] -> None
  | chain ->
    Some
      (List.fold_left
         (fun acc (c : Grid_gsi.Cert.t) -> Float.min acc c.Grid_gsi.Cert.not_after)
         infinity chain)

(* The wide event every authorization decision leaves behind. It carries
   everything the online safety monitor needs to re-derive the answer:
   the full request (subject, action, rsl, jobowner, jobtag), the policy
   epoch the decision was made under, and the credential's expiry. *)
let decision_attrs ?epoch ~backend ~action (q : query) decision =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  [ ("backend", backend); ("action", action); ("outcome", outcome_label decision);
    ("subject", Grid_gsi.Dn.to_string q.requester) ]
  @ (match epoch with
    | None -> []
    | Some epoch -> [ ("epoch", string_of_int (epoch ())) ])
  @ opt "job_id" Fun.id q.job_id
  @ opt "jobtag" Fun.id q.jobtag
  @ opt "jobowner" Grid_gsi.Dn.to_string q.job_owner
  @ opt "rsl" Grid_rsl.Ast.clause_to_string q.rsl
  @ opt "cred_expiry" (Printf.sprintf "%.3f")
      (Option.bind q.requester_credential credential_expiry)

let instrument ?(backend = "pep") ?epoch ~obs (c : t) : t =
  if not (Grid_obs.Obs.enabled obs) then c
  else fun q ->
    let action = Grid_policy.Types.Action.to_string q.action in
    let decision =
      Grid_obs.Obs.with_span obs
        ~attrs:[ ("backend", backend); ("action", action) ]
        "authz.callout"
        (fun span ->
          let decision = c q in
          Grid_obs.Span.set_attr span "outcome" (outcome_label decision);
          decision)
    in
    Grid_obs.Obs.incr obs
      ~labels:
        [ ("backend", backend); ("action", action); ("outcome", outcome_label decision) ]
      "authz_decisions_total";
    Grid_obs.Obs.emit obs ~layer:"callout" "authz.decision"
      (decision_attrs ?epoch ~backend ~action q decision);
    decision
