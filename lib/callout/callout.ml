(* The GRAM authorization callout API (Section 5.2).

   The paper inserts a policy evaluation point into the Job Manager through
   a callout: a function invoked before creating a job manager request and
   before cancel/query/signal on a running job. The callout receives the
   credential of the requesting user, the credential (identity) of the user
   who started the job, the action, a unique job identifier and the RSL job
   description, and answers success or a typed authorization error. *)

type query = {
  requester : Grid_gsi.Dn.t;              (* authenticated grid identity *)
  requester_credential : Grid_gsi.Credential.t option;
  job_owner : Grid_gsi.Dn.t option;       (* initiator of the target job *)
  action : Grid_policy.Types.Action.t;
  job_id : string option;                 (* unique job identifier *)
  rsl : Grid_rsl.Ast.clause option;       (* job description, start only *)
  jobtag : string option;                 (* target job's tag, management *)
}

type error =
  | Denied of string
    (* the policy evaluated and said no *)
  | System_error of string
    (* the authorization system itself failed (paper: "authorization
       system failures" are distinguished from denials in the extended
       GRAM protocol errors) *)
  | Bad_configuration of string
    (* the callout could not even be located/loaded *)

type decision = (unit, error) result
type t = query -> decision

let error_to_string = function
  | Denied m -> "authorization denied: " ^ m
  | System_error m -> "authorization system failure: " ^ m
  | Bad_configuration m -> "authorization callout misconfigured: " ^ m

let pp_error ppf e = Fmt.string ppf (error_to_string e)

let start_query ~requester ?credential ~job_id ~rsl () =
  { requester; requester_credential = credential; job_owner = None;
    action = Grid_policy.Types.Action.Start; job_id = Some job_id; rsl = Some rsl;
    jobtag = None }

let management_query ~requester ?credential ~action ~job_id ~job_owner ~jobtag () =
  { requester; requester_credential = credential; job_owner = Some job_owner; action;
    job_id = Some job_id; rsl = None; jobtag }

(* Translate a callout query into a policy-engine request. *)
let to_policy_request (q : query) : Grid_policy.Types.request =
  { Grid_policy.Types.subject = q.requester;
    action = q.action;
    job = q.rsl;
    jobowner = q.job_owner;
    jobtag = q.jobtag }

(* --- Combinators ---------------------------------------------------- *)

(* Every callout in the list must authorize (the multi-PEP conjunction of
   the interaction model: local policy AND VO policy). *)
let all (callouts : t list) : t =
 fun q ->
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> begin
      match c q with
      | Ok () -> go rest
      | Error _ as e -> e
    end
  in
  if callouts = [] then Error (Bad_configuration "no authorization callouts configured")
  else go callouts

let permit_all : t = fun _ -> Ok ()

let deny_all ~reason : t = fun _ -> Error (Denied reason)

let failing ~message : t = fun _ -> Error (System_error message)

(* Instrumentation wrapper: count invocations (benchmarks, tests). *)
let counting (c : t) : t * (unit -> int) =
  let n = ref 0 in
  ( (fun q ->
      incr n;
      c q),
    fun () -> !n )

(* Full observability wrapper: the callout is the paper's PEP seam, so this
   is where every authorization decision is counted and timed. The span
   nests under whatever stage is current (the JMI's start/manage span),
   and the decision lands in authz_decisions_total split by action,
   outcome and backend. *)
let outcome_label : decision -> string = function
  | Ok () -> "permitted"
  | Error (Denied _) -> "denied"
  | Error (System_error _) -> "system_error"
  | Error (Bad_configuration _) -> "bad_configuration"

let instrument ?(backend = "pep") ~obs (c : t) : t =
  if not (Grid_obs.Obs.enabled obs) then c
  else fun q ->
    let action = Grid_policy.Types.Action.to_string q.action in
    let decision =
      Grid_obs.Obs.with_span obs
        ~attrs:[ ("backend", backend); ("action", action) ]
        "authz.callout"
        (fun span ->
          let decision = c q in
          Grid_obs.Span.set_attr span "outcome" (outcome_label decision);
          decision)
    in
    Grid_obs.Obs.incr obs
      ~labels:
        [ ("backend", backend); ("action", action); ("outcome", outcome_label decision) ]
      "authz_decisions_total";
    decision
