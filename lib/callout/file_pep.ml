(* The flat-file policy evaluation point.

   The paper's prototype "experimented with policies written in plain text
   files on the resource[,] includ[ing] both local resource and VO
   policies". This PEP evaluates a callout query against a list of named
   policy sources with conjunctive combination and maps the policy
   decision onto callout errors.

   Evaluation runs through the compiled policy index ([Compile]): each
   source is compiled once when the PEP is built, and [Compiled.reload]
   recompiles — bumping the policy epoch that decision caches key on.
   [reference] keeps the uncompiled scan for differential tests and the
   T16 benchmark baseline. *)

let decision_to_callout = function
  | Grid_policy.Combine.Permit -> Callout.permitted
  | Grid_policy.Combine.Deny { source; reason } ->
    Error
      (Callout.Denied
         (Printf.sprintf "%s: %s" source (Grid_policy.Eval.reason_to_string reason)))

(* Denial interning: the hot path answers the same few distinct
   (source, reason) denials over and over, so the message is rendered
   once per distinct combined decision and the resulting callout
   decision value shared thereafter — structurally identical to what
   [decision_to_callout] would build fresh. The table is capped (an
   adversarial reason stream cannot grow it without bound) and reset on
   reload, since a new policy makes old denial shapes unreachable. *)
let intern_cap = 1024

let intern_decision (tbl : (Grid_policy.Combine.combined_decision, Callout.decision) Hashtbl.t)
    = function
  | Grid_policy.Combine.Permit -> Callout.permitted
  | Grid_policy.Combine.Deny _ as d -> begin
    match Hashtbl.find_opt tbl d with
    | Some decision -> decision
    | None ->
      let decision = decision_to_callout d in
      if Hashtbl.length tbl < intern_cap then Hashtbl.add tbl d decision;
      decision
  end

module Compiled = struct
  type t = {
    obs : Grid_obs.Obs.t option;
    mutable sources : Grid_policy.Combine.compiled_source list;
    mutable epoch : int;
    interned : (Grid_policy.Combine.combined_decision, Callout.decision) Hashtbl.t;
  }

  (* An empty source list still gets a fresh epoch, so reloading a PEP
     to "no policy" cannot rewind the epoch a cache saw. *)
  let stamp sources =
    let e = Grid_policy.Combine.epoch_of sources in
    if e = 0 then Grid_policy.Compile.fresh_epoch () else e

  (* Every epoch change is announced on the event bus: the safety
     monitor dates its staleness window from this event, so it must be
     emitted at the instant the new compilation becomes answerable. *)
  let note_epoch ?(kind = "reload") t =
    match t.obs with
    | None -> ()
    | Some obs ->
      Grid_obs.Obs.emit obs ~layer:"pep" "policy.epoch"
        [ ("epoch", string_of_int t.epoch);
          ("sources", string_of_int (List.length t.sources));
          ("cause", kind) ]

  let create ?obs sources =
    let sources = Grid_policy.Combine.compile_sources sources in
    let t = { obs; sources; epoch = stamp sources; interned = Hashtbl.create 16 } in
    note_epoch ~kind:"create" t;
    t

  let epoch t = t.epoch

  let sources t = List.map (fun c -> c.Grid_policy.Combine.origin) t.sources

  let reload t sources =
    let sources = Grid_policy.Combine.compile_sources sources in
    t.sources <- sources;
    t.epoch <- stamp sources;
    Hashtbl.reset t.interned;
    note_epoch t

  let callout t : Callout.t =
   fun query ->
    intern_decision t.interned
      (Grid_policy.Combine.evaluate_compiled ?obs:t.obs t.sources
         (Callout.to_policy_request query))

  (* Native batch lane: structurally identical questions are collapsed
     once, up front, so the per-source pipeline and the denial interning
     each run once per *distinct* request rather than once per query —
     the dominant saving on the repetitive streams job managers emit.
     [Combine.evaluate_compiled_many] still sorts and groups what
     remains by subject. *)
  let batch t : Callout.Batch.t =
    let single = callout t in
    let many qs =
      let n = Array.length qs in
      if n = 0 then [||]
      else begin
        let requests = Array.map Callout.to_policy_request qs in
        let rep = Array.make n 0 in
        let seen : (Grid_policy.Types.request, int) Hashtbl.t =
          Hashtbl.create (min n 64)
        in
        let distinct_rev = ref [] in
        let count = ref 0 in
        for i = 0 to n - 1 do
          match Hashtbl.find_opt seen requests.(i) with
          | Some j -> rep.(i) <- j
          | None ->
            Hashtbl.add seen requests.(i) !count;
            rep.(i) <- !count;
            distinct_rev := requests.(i) :: !distinct_rev;
            incr count
        done;
        let distinct = Array.of_list (List.rev !distinct_rev) in
        let answers =
          Array.map (intern_decision t.interned)
            (Grid_policy.Combine.evaluate_compiled_many ?obs:t.obs t.sources distinct)
        in
        Array.init n (fun i -> answers.(rep.(i)))
      end
    in
    Callout.Batch.make ~single ~many
end

let of_sources ?obs (sources : Grid_policy.Combine.source list) : Callout.t =
  Compiled.callout (Compiled.create ?obs sources)

(* The pre-compilation evaluation path: scans every statement per query.
   The differential suite holds [of_sources] to this behaviour; bench T16
   measures the gap. *)
let reference ?obs (sources : Grid_policy.Combine.source list) : Callout.t =
 fun query ->
  decision_to_callout
    (Grid_policy.Combine.evaluate ?obs sources (Callout.to_policy_request query))

let of_policy ?obs ~name policy = of_sources ?obs [ Grid_policy.Combine.source ~name policy ]

(* Advice for policy-derived enforcement: the conjunction of the clauses
   that matched in each source. A permitted request has a matched clause
   in every source, so the concatenation is the full set of constraints
   the decision rested on — the enforcement layer can derive a sandbox
   envelope from it. Returns None when any source lacks a match (the
   request was not permitted, or the source grants via requirements
   only). *)
let advice (sources : Grid_policy.Combine.source list) : Callout.query -> Grid_policy.Types.clause option =
 fun query ->
  let request = Callout.to_policy_request query in
  let matched =
    List.map
      (fun (s : Grid_policy.Combine.source) ->
        (Grid_policy.Eval.explain s.Grid_policy.Combine.policy request)
          .Grid_policy.Eval.matched_clause)
      sources
  in
  if List.exists Option.is_none matched then None
  else Some (List.concat_map Option.get matched)

(* Parse policy files (already read into strings) into a PEP. A parse
   failure is an authorization *system* error at evaluation time: the PEP
   exists but cannot interpret its policy — it must fail closed without
   masquerading as a mere denial. *)
let of_texts ?obs (named_texts : (string * string) list) : Callout.t =
  let parsed =
    List.map
      (fun (name, text) ->
        match Grid_policy.Parse.parse_result text with
        | Ok policy -> begin
          match Grid_policy.Eval.validate policy with
          | Ok () -> Ok (Grid_policy.Combine.source ~name policy)
          | Error m -> Error (Printf.sprintf "policy %s invalid: %s" name m)
        end
        | Error m -> Error (Printf.sprintf "policy %s unparseable: %s" name m))
      named_texts
  in
  match
    List.find_map (function Error m -> Some m | Ok _ -> None) parsed
  with
  | Some message -> fun _ -> Error (Callout.System_error message)
  | None ->
    of_sources ?obs (List.filter_map (function Ok s -> Some s | Error _ -> None) parsed)
