(* The flat-file policy evaluation point.

   The paper's prototype "experimented with policies written in plain text
   files on the resource[,] includ[ing] both local resource and VO
   policies". This PEP evaluates a callout query against a list of named
   policy sources with conjunctive combination and maps the policy
   decision onto callout errors. *)

let of_sources ?obs (sources : Grid_policy.Combine.source list) : Callout.t =
 fun query ->
  let request = Callout.to_policy_request query in
  match Grid_policy.Combine.evaluate ?obs sources request with
  | Grid_policy.Combine.Permit -> Ok ()
  | Grid_policy.Combine.Deny { source; reason } ->
    Error
      (Callout.Denied
         (Printf.sprintf "%s: %s" source (Grid_policy.Eval.reason_to_string reason)))

let of_policy ?obs ~name policy = of_sources ?obs [ Grid_policy.Combine.source ~name policy ]

(* Advice for policy-derived enforcement: the conjunction of the clauses
   that matched in each source. A permitted request has a matched clause
   in every source, so the concatenation is the full set of constraints
   the decision rested on — the enforcement layer can derive a sandbox
   envelope from it. Returns None when any source lacks a match (the
   request was not permitted, or the source grants via requirements
   only). *)
let advice (sources : Grid_policy.Combine.source list) : Callout.query -> Grid_policy.Types.clause option =
 fun query ->
  let request = Callout.to_policy_request query in
  let matched =
    List.map
      (fun (s : Grid_policy.Combine.source) ->
        (Grid_policy.Eval.explain s.Grid_policy.Combine.policy request)
          .Grid_policy.Eval.matched_clause)
      sources
  in
  if List.exists Option.is_none matched then None
  else Some (List.concat_map Option.get matched)

(* Parse policy files (already read into strings) into a PEP. A parse
   failure is an authorization *system* error at evaluation time: the PEP
   exists but cannot interpret its policy — it must fail closed without
   masquerading as a mere denial. *)
let of_texts ?obs (named_texts : (string * string) list) : Callout.t =
  let parsed =
    List.map
      (fun (name, text) ->
        match Grid_policy.Parse.parse_result text with
        | Ok policy -> begin
          match Grid_policy.Eval.validate policy with
          | Ok () -> Ok (Grid_policy.Combine.source ~name policy)
          | Error m -> Error (Printf.sprintf "policy %s invalid: %s" name m)
        end
        | Error m -> Error (Printf.sprintf "policy %s unparseable: %s" name m))
      named_texts
  in
  match
    List.find_map (function Error m -> Some m | Ok _ -> None) parsed
  with
  | Some message -> fun _ -> Error (Callout.System_error message)
  | None ->
    of_sources ?obs (List.filter_map (function Ok s -> Some s | Error _ -> None) parsed)
