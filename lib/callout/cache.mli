(** Bounded LRU cache over authorization callout decisions.

    Keyed on [(scope, policy epoch, requester DN, action, job id, jobtag,
    jobowner, RSL fingerprint)] with a simulated-time TTL. Only definite
    answers — [Ok ()] and [Denied] — are cached; [System_error] and
    [Bad_configuration] always reach the backend, and the fail-open
    degradation combinator must be composed {e outside} {!with_cache} so a
    degraded permit is never stored. A policy reload bumps the epoch
    ({!Grid_policy.Compile}), which both orphans old keys and flushes the
    table; an expired requester credential bypasses the cache entirely,
    and entries never outlive the credential chain that earned them.

    Counters: [authz_cache_hits_total], [authz_cache_misses_total],
    [authz_cache_evictions_total], [authz_cache_invalidations_total],
    [authz_cache_bypass_total], plus the [authz_cache_size] gauge. *)

type t

val create :
  ?capacity:int ->
  ?ttl:float ->
  ?obs:Grid_obs.Obs.t ->
  ?epoch:(unit -> int) ->
  ?revision:(unit -> int) ->
  ?extra_deadline:(Grid_gsi.Credential.t -> float option) ->
  ?revoked:(Grid_gsi.Credential.t -> bool) ->
  now:(unit -> float) ->
  unit ->
  t
(** [capacity] defaults to 1024 entries, [ttl] to 300 simulated seconds.
    [epoch] is sampled on every lookup (pass the compiled PEP's epoch);
    when it changes, the whole cache is invalidated. [revision] (the
    ReBAC tuple-store revision, {!Grid_rebac.Store.revision} via the
    PEP) is likewise sampled per lookup and folded into the key, but a
    change orphans old entries instead of flushing — a tuple write
    invalidates nothing about other snapshots' answers.
    [extra_deadline] further caps a stored entry's deadline from the
    requester credential — e.g. the [not_after] of a carried STS token
    ({!Grid_sts.Token.credential_deadline} at the wiring layer), so a
    cached permit never outlives the grant that earned it. [revoked]
    makes matching credentials bypass the cache entirely (reason
    ["credential_revoked"]) — wire it to the trust store's CRL so a
    revoked-but-unexpired proxy can neither be served from nor teach the
    cache. [now] is typically the engine clock. Raises
    [Invalid_argument] on non-positive capacity or ttl. *)

val with_cache : t -> ?scope:string -> Callout.t -> Callout.t
(** Memoize a callout through the cache. [scope] (default ["authz"])
    partitions the key space when one cache serves several callouts
    backed by different policy (e.g. the gatekeeper PEP and the job
    manager's mode callout). *)

val with_cache_many : t -> ?scope:string -> Callout.Batch.t -> Callout.Batch.t
(** Batched sibling of {!with_cache}: the single lane is exactly
    [with_cache t ~scope]; the many lane classifies the whole batch in
    one sweep — hits served from the table, credential bypasses and
    (representative) misses shipped to the backend's many lane as one
    sub-batch, within-batch duplicate keys collapsed onto one backend
    ask and answered like the cache hits they would have been
    sequentially. Answers come back in request order; bypassed queries
    are never stored. *)

val invalidate : t -> unit
(** Drop every entry, counting them as invalidations. *)

val rsl_fingerprint : Grid_rsl.Ast.clause option -> string
(** The stable clause rendering used in keys ([""] for [None]); its
    stability is pinned by the RSL round-trip property in [test_rsl]. *)

val query_key : scope:string -> epoch:int -> ?revision:int -> Callout.query -> string
(** The cache key itself: length-prefixed over every component the
    answer can depend on, so distinct queries cannot collide even when
    components contain separator bytes. Exposed for the key-collision
    property suite in [test_callout]. *)

(** {1 Introspection} *)

val capacity : t -> int
val size : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val invalidations : t -> int

val bypasses : t -> int
(** Queries that skipped the cache because the requester credential was
    not live or was revoked. *)

val pp : t Fmt.t
(** One-line statistics view (the [gridctl metrics] cache report). *)
