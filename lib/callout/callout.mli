(** The GRAM authorization callout API (paper Section 5.2).

    A callout is the seam between GRAM and any policy evaluation point. It
    is invoked before job-manager-request creation and before every
    cancel/query/signal on a running job, and answers success or a typed
    authorization error distinguishing denial from authorization-system
    failure — the error-code extension the paper added to the GRAM
    protocol. *)

type query = {
  requester : Grid_gsi.Dn.t;
  requester_credential : Grid_gsi.Credential.t option;
  job_owner : Grid_gsi.Dn.t option;
  action : Grid_policy.Types.Action.t;
  job_id : string option;
  rsl : Grid_rsl.Ast.clause option;
  jobtag : string option;
}

type error =
  | Denied of string
  | System_error of string
  | Bad_configuration of string

type decision = (unit, error) result

type t = query -> decision

val permitted : decision
(** The shared [Ok ()] decision. Hot paths return this constant instead
    of allocating a fresh [Ok ()] per call; callers must not rely on
    physical identity, only on structural equality. *)

val error_to_string : error -> string
val pp_error : error Fmt.t

(** Smart constructor for queries — the single supported way to build a
    {!query}.

    Migration path: the legacy [start_query] and [management_query]
    constructors below are thin wrappers over [Query.make] and are kept
    for source compatibility only. New code should write

    {[
      Query.make ~requester ?credential ?job_id (Query.Start rsl)
      Query.make ~requester ?credential ?job_id
        (Query.Management { action; job_owner; jobtag })
    ]}

    The variant-typed [intent] makes the start/management split explicit
    in the type instead of in two near-identical functions, and is the
    extension point for future intents (e.g. delegation). *)
module Query : sig
  type intent =
    | Start of Grid_rsl.Ast.clause
        (** Job submission: the RSL clause is the object of the decision
            and the action is forced to [Action.Start]. *)
    | Management of {
        action : Grid_policy.Types.Action.t;
        job_owner : Grid_gsi.Dn.t;
        jobtag : string option;
      }
        (** Cancel/query/signal on a running job owned by [job_owner],
            optionally via a delegated [jobtag]. *)

  val make :
    requester:Grid_gsi.Dn.t ->
    ?credential:Grid_gsi.Credential.t ->
    ?job_id:string ->
    intent ->
    query
end

val start_query :
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  job_id:string ->
  rsl:Grid_rsl.Ast.clause ->
  unit ->
  query
[@@ocaml.deprecated "Use Query.make ... (Query.Start rsl) instead."]
(** @deprecated Thin wrapper over [Query.make _ (Query.Start _)]; see
    the migration note on {!module:Query}. *)

val management_query :
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  action:Grid_policy.Types.Action.t ->
  job_id:string ->
  job_owner:Grid_gsi.Dn.t ->
  jobtag:string option ->
  unit ->
  query
[@@ocaml.deprecated "Use Query.make ... (Query.Management ...) instead."]
(** @deprecated Thin wrapper over [Query.make _ (Query.Management _)];
    see the migration note on {!module:Query}. *)

val to_policy_request : query -> Grid_policy.Types.request

val all : t list -> t
(** Conjunction: every callout must authorize; the first error wins. An
    empty list is a configuration error (fail closed). *)

val permit_all : t
(** Authorizes everything — the "no PEP" baseline for benchmarks. *)

val deny_all : reason:string -> t
val failing : message:string -> t

val counting : t -> t * (unit -> int)
(** Wrap a callout with an invocation counter. *)

(** Batched decisions: a two-lane callout whose [many] lane answers a
    whole [query array] in one call, with the contract that
    [evaluate_many b qs] is element-wise equal (decision and reason) to
    [Array.map (check b) qs] and preserves order. Backends that can
    amortize work across a batch (shared policy-index probes, per-batch
    dedupe, one cache pass) implement [many] natively; any plain
    {!type:t} lifts via {!Batch.of_callout} with the derived
    (non-amortized) lane, so every existing callout keeps working. *)
module Batch : sig
  type callout = t

  type t = private {
    single : callout;
    many : query array -> decision array;
  }

  val make : single:callout -> many:(query array -> decision array) -> t
  (** [many] must be element-wise equivalent to mapping [single] and
      must return the answers in request order. *)

  val of_callout : callout -> t
  (** Derived fallback: [many] is [Array.map] over the single lane. *)

  val callout : t -> callout
  val check : t -> callout

  val evaluate_many : t -> query array -> decision array
  (** Answers in request order; [[||]] for the empty batch without
      touching the backend. *)
end

val outcome_label : decision -> string
(** ["permitted"] / ["denied"] / ["system_error"] / ["bad_configuration"]:
    the metric label vocabulary for decisions. *)

val with_timeout :
  ?obs:Grid_obs.Obs.t -> budget:float -> latency:(unit -> float) -> t -> t
(** Bound the backend's (simulated) latency: when [latency ()] samples
    above [budget], answer [System_error] immediately and count it under
    [authz_timeouts_total] instead of blocking the JMI. *)

val with_retry : ?obs:Grid_obs.Obs.t -> ?policy:Grid_util.Retry.policy -> t -> t
(** Retry [System_error] answers up to [policy.max_attempts] times
    (within the same simulation instant — the JMI blocks on the callout);
    [Denied] and [Bad_configuration] are returned as-is. Each retry is
    counted under [authz_retries_total]. *)

val with_breaker : breaker:Grid_util.Retry.Breaker.t -> now:(unit -> float) -> t -> t
(** Circuit-break a callout: while the breaker is open, answer
    [System_error "authorization backend circuit open"] without invoking
    the backend. [Ok] and [Denied] count as successes (the policy engine
    answered); [System_error]/[Bad_configuration] count as failures. *)

val breaker :
  ?failure_threshold:int -> ?cooldown:float -> ?obs:Grid_obs.Obs.t -> unit ->
  Grid_util.Retry.Breaker.t
(** A breaker whose state transitions are counted under
    [authz_breaker_transitions_total{from,to}]. *)

type degradation =
  | Fail_open  (** availability over enforcement: outage => permit *)
  | Fail_closed  (** the paper's default-deny stance: outage => refuse *)

val degradation_label : degradation -> string

val degrade : ?obs:Grid_obs.Obs.t -> degradation -> t -> t
(** Explicit degradation policy for backend outages. Converts only
    [System_error]/[Bad_configuration] — a [Denied] policy answer is
    never overridden, so [Fail_open] cannot turn a denial into a permit.
    Every degraded decision is counted under
    [authz_degraded_total{mode}]. Default configuration across the
    system is [Fail_closed]. *)

val flaky : rng:Grid_util.Rng.t -> failure_probability:float -> t -> t
(** Deterministic fault injector: fail with [System_error] at the given
    probability, sampled from the caller's seeded stream. *)

val credential_expiry : Grid_gsi.Credential.t -> float option
(** Earliest [not_after] across the presented chain; [None] for an
    empty chain. *)

val instrument : ?backend:string -> ?epoch:(unit -> int) -> obs:Grid_obs.Obs.t -> t -> t
(** The timed sibling of {!counting}: wrap a callout so every invocation
    opens an ["authz.callout"] span, increments
    [authz_decisions_total{action,outcome,backend}] and emits an
    ["authz.decision"] wide event carrying the full request, the
    outcome, the policy epoch sampled from [epoch] and the requesting
    credential's expiry — the record the online safety monitor checks.
    A disabled observer returns the callout unchanged. *)

val instrument_batch :
  ?backend:string -> ?epoch:(unit -> int) -> obs:Grid_obs.Obs.t -> Batch.t -> Batch.t
(** Batched sibling of {!instrument}: the single lane is instrumented
    per-decision as usual; the many lane runs the whole batch under one
    ["authz.batch"] span and bulk-increments
    [authz_decisions_total{action,outcome,backend}] per cell, but still
    emits one ["authz.decision"] wide event per decision — the safety
    monitor's input must not be thinned out by batching. *)
