(** The GRAM authorization callout API (paper Section 5.2).

    A callout is the seam between GRAM and any policy evaluation point. It
    is invoked before job-manager-request creation and before every
    cancel/query/signal on a running job, and answers success or a typed
    authorization error distinguishing denial from authorization-system
    failure — the error-code extension the paper added to the GRAM
    protocol. *)

type query = {
  requester : Grid_gsi.Dn.t;
  requester_credential : Grid_gsi.Credential.t option;
  job_owner : Grid_gsi.Dn.t option;
  action : Grid_policy.Types.Action.t;
  job_id : string option;
  rsl : Grid_rsl.Ast.clause option;
  jobtag : string option;
}

type error =
  | Denied of string
  | System_error of string
  | Bad_configuration of string

type decision = (unit, error) result

type t = query -> decision

val error_to_string : error -> string
val pp_error : error Fmt.t

val start_query :
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  job_id:string ->
  rsl:Grid_rsl.Ast.clause ->
  unit ->
  query

val management_query :
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  action:Grid_policy.Types.Action.t ->
  job_id:string ->
  job_owner:Grid_gsi.Dn.t ->
  jobtag:string option ->
  unit ->
  query

val to_policy_request : query -> Grid_policy.Types.request

val all : t list -> t
(** Conjunction: every callout must authorize; the first error wins. An
    empty list is a configuration error (fail closed). *)

val permit_all : t
(** Authorizes everything — the "no PEP" baseline for benchmarks. *)

val deny_all : reason:string -> t
val failing : message:string -> t

val counting : t -> t * (unit -> int)
(** Wrap a callout with an invocation counter. *)

val outcome_label : decision -> string
(** ["permitted"] / ["denied"] / ["system_error"] / ["bad_configuration"]:
    the metric label vocabulary for decisions. *)

val instrument : ?backend:string -> obs:Grid_obs.Obs.t -> t -> t
(** The timed sibling of {!counting}: wrap a callout so every invocation
    opens an ["authz.callout"] span and increments
    [authz_decisions_total{action,outcome,backend}]. A disabled observer
    returns the callout unchanged. *)
