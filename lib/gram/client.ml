(* The GRAM client.

   Submits jobs and issues management requests on behalf of a grid
   identity. Section 5.2's client-side extension is visible here:
   management requests carry the requester's own identity, which may
   differ from the job originator's — the client "recognizes the identity
   of the job originator" via the job status it can query.

   Management requests (status/cancel/signal) are idempotent at the
   resource, so the client may retry them under a deadline with
   exponential backoff when a request times out. Submission is NOT
   retried automatically: a lost reply does not imply a lost job, and
   resubmitting could start it twice.

   The [*_sync] helpers drive the simulation engine until the reply
   arrives, giving tests and examples a blocking API over the
   asynchronous wire protocol. *)

type t = {
  identity : Grid_gsi.Identity.t;
  resource : Resource.t;
  retry : Grid_util.Retry.policy;
  attempt_timeout : float;
  rng : Grid_util.Rng.t;  (* backoff jitter stream *)
}

let create ?(retry = Grid_util.Retry.default) ?(attempt_timeout = 0.25) ?(seed = 11)
    ~identity ~resource () =
  { identity; resource; retry; attempt_timeout; rng = Grid_util.Rng.create ~seed }

let identity t = t.identity
let subject t = Grid_gsi.Identity.subject t.identity

let credential_for t =
  let challenge = Resource.new_challenge t.resource in
  Grid_gsi.Credential.of_identity t.identity ~challenge

let submit ?timeout t ~rsl ~reply =
  Resource.submit ?timeout t.resource ~credential:(credential_for t) ~rsl ~reply

let manage ?timeout t ~contact action ~reply =
  Resource.manage ?timeout t.resource
    ~requester:(Grid_gsi.Identity.effective_subject t.identity)
    ~credential:(credential_for t) ~contact action ~reply

(* --- Retrying management ---------------------------------------------- *)

let action_label = function
  | Protocol.Cancel -> "cancel"
  | Protocol.Status -> "status"
  | Protocol.Signal _ -> "signal"

(* Retry [action] until it yields a non-timeout result, the policy's
   attempts run out, or the (relative) [deadline] would be overshot.
   Only [Request_timed_out] is retried — every other error is a definite
   answer from the resource. Each attempt mints a fresh credential, so a
   duplicate-delivered earlier attempt can never be replayed. *)
let manage_with_retry ?policy ?deadline t ~contact action ~reply =
  let policy = match policy with Some p -> p | None -> t.retry in
  let engine = Resource.engine t.resource in
  let obs = Resource.obs t.resource in
  let label = action_label action in
  let started = Grid_sim.Engine.now engine in
  let absolute_deadline = Option.map (fun d -> started +. d) deadline in
  let give_up ~attempts reason =
    if Grid_obs.Obs.enabled obs then
      Grid_obs.Obs.incr obs ~labels:[ ("action", label) ] "client_retry_exhausted_total";
    reply
      (Error
         (Protocol.Request_timed_out
            (Printf.sprintf "gave up after %d attempt%s: %s" attempts
               (if attempts = 1 then "" else "s")
               reason)))
  in
  let rec attempt n =
    let now = Grid_sim.Engine.now engine in
    (* Bound each attempt by both the per-attempt timeout and what is
       left of the overall deadline. *)
    let budget =
      match absolute_deadline with
      | None -> t.attempt_timeout
      | Some d -> Float.min t.attempt_timeout (d -. now)
    in
    if budget <= 0.0 then give_up ~attempts:(n - 1) "deadline expired"
    else
      manage ~timeout:budget t ~contact action ~reply:(function
        | Error (Protocol.Request_timed_out msg) -> begin
          match
            Grid_util.Retry.next policy ~rng:t.rng ~now:(Grid_sim.Engine.now engine)
              ~deadline:absolute_deadline ~attempt:n
          with
          | Grid_util.Retry.Give_up reason ->
            give_up ~attempts:n (reason ^ "; last error: " ^ msg)
          | Grid_util.Retry.Retry_after backoff ->
            if Grid_obs.Obs.enabled obs then
              Grid_obs.Obs.incr obs ~labels:[ ("action", label) ] "client_retries_total";
            Grid_sim.Engine.schedule_after engine backoff (fun () -> attempt (n + 1))
        end
        | result -> reply result)
  in
  attempt 1

(* --- Blocking wrappers ------------------------------------------------ *)

let await engine cell =
  let guard = ref 0 in
  while !cell = None && !guard < 1_000_000 do
    if not (Grid_sim.Engine.step engine) then guard := 1_000_000 else incr guard
  done;
  match !cell with
  | Some v -> v
  | None -> failwith "Client: no reply (simulation drained)"

let submit_sync ?timeout t ~rsl =
  let cell = ref None in
  submit ?timeout t ~rsl ~reply:(fun r -> cell := Some r);
  await (Resource.engine t.resource) cell

let manage_sync ?timeout t ~contact action =
  let cell = ref None in
  manage ?timeout t ~contact action ~reply:(fun r -> cell := Some r);
  await (Resource.engine t.resource) cell

let manage_with_retry_sync ?policy ?deadline t ~contact action =
  let cell = ref None in
  manage_with_retry ?policy ?deadline t ~contact action ~reply:(fun r -> cell := Some r);
  await (Resource.engine t.resource) cell

let watch t ~contact ~on_state_change =
  Resource.register_callback t.resource ~contact ~on_state_change

let status_sync t ~contact =
  match manage_sync t ~contact Protocol.Status with
  | Ok (Protocol.Job_status st) -> Ok st
  | Ok Protocol.Ack -> Error (Protocol.Invalid_request "status returned no body")
  | Error _ as e -> e
