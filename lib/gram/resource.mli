(** A GRAM-managed resource (one grid site): Gatekeeper + JMIs + LRM +
    audit, reachable directly (for microbenchmarks) or over the simulated
    network (for end-to-end flows). *)

type t

val create :
  ?name:string ->
  ?network:Grid_sim.Network.t ->
  ?gatekeeper_pep:Grid_callout.Callout.t ->
  ?allocation:Grid_accounts.Allocation.enforcement ->
  ?obs:Grid_obs.Obs.t ->
  ?request_timeout:float ->
  ?authz_cache:Grid_callout.Cache.t ->
  ?store:Grid_store.Store.t ->
  ?policy_epoch:(unit -> int) ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  mapper:Grid_accounts.Mapper.t ->
  mode:Mode.t ->
  lrm:Grid_lrm.Lrm.t ->
  engine:Grid_sim.Engine.t ->
  unit ->
  t
(** [obs] defaults to a fresh engine-clocked handle
    ([Grid_obs.Obs.of_engine]); pass [Grid_obs.Obs.noop] to disable
    instrumentation, or share one handle across components. The mode's
    authorization callout is wrapped with [Mode.instrument] under it.
    [request_timeout] is the default per-request deadline applied to the
    networked entry points (none by default: requests wait forever, as
    the pre-fault-model behaviour did); injected network faults are
    counted under [network_faults_total] when [obs] is enabled.
    [authz_cache] memoizes the mode's authorization callout (inside the
    instrumentation, so hits still count as decisions) and the
    gatekeeper PEP, each under its own cache scope.

    [store] makes the job manager durable: every authorization-relevant
    lifecycle event (creation with owner, jobtag, RSL fingerprint,
    sandbox limits and policy epoch; terminal state transitions;
    cancel/signal outcomes) is journalled through it, and the live job
    table serves as its snapshot source for compaction. [policy_epoch]
    (typically the compiled PEP's epoch counter) is recorded on each
    admission and compared on {!recover}. *)

val name : t -> string
val engine : t -> Grid_sim.Engine.t
val network : t -> Grid_sim.Network.t
val lrm : t -> Grid_lrm.Lrm.t
val audit : t -> Grid_audit.Audit.t
val trace : t -> Grid_sim.Trace.t

val obs : t -> Grid_obs.Obs.t
(** The resource's observability handle: metrics registry + span tracer. *)

val authz_cache : t -> Grid_callout.Cache.t option
(** The authorization decision cache the resource was built with, for
    statistics views ([gridctl metrics]) and tests. *)

val gatekeeper : t -> Gatekeeper.t

val store : t -> Grid_store.Store.t option
(** The durable store the resource was built with, if any. *)

val crash : t -> unit
(** Kill the job manager: every in-memory JMI (and the store's unsynced
    journal tail, per the disk fault profile) is lost. The LRM — a
    separate process in GT2 terms — keeps running its jobs. Follow with
    {!recover} to rebuild the job table from snapshot + journal. *)

type recovery_summary = {
  jobs_restored : int;  (** JMIs rebuilt from durable creation records *)
  records_replayed : int;  (** snapshot + journal records decoded *)
  dropped_bytes : int;  (** corrupt/torn tail bytes discarded *)
  stale_epoch_jobs : int;
      (** jobs admitted under a policy epoch older than the current one *)
  decode_failures : int;
  duration : float;  (** host-clock seconds spent recovering *)
}

val recover : t -> recovery_summary
(** Replay the store and rebuild the JMI table: restored instances keep
    their contacts, re-attach to still-running LRM jobs, and authorize
    management exactly as before the crash. The authorization decision
    cache (if any) is flushed — the policy epoch may have moved while
    the job manager was down — and epoch mismatches are counted in
    [recovery_epoch_mismatches_total]. Without a store this is a no-op
    summary of zeros. *)

val find_jmi : t -> string -> Job_manager.t option
val jobs : t -> Job_manager.t list
val jobs_with_tag : t -> string -> Job_manager.t list

val register_callback :
  t ->
  contact:string ->
  on_state_change:(Protocol.job_state -> unit) ->
  (unit, Protocol.management_error) result
(** GT2-style callback contact: deliver subsequent job state transitions
    to the listener over the simulated network. *)

val new_challenge : t -> string

val submit_direct :
  t ->
  credential:Grid_gsi.Credential.t ->
  rsl:string ->
  (Protocol.submit_reply, Protocol.submit_error) result

val manage_direct :
  t ->
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  contact:string ->
  Protocol.management_action ->
  (Protocol.management_reply, Protocol.management_error) result
(** When [credential] is given it is authenticated (chain, expiry,
    revocation, single-use challenge) and must assert [requester];
    credential-less calls are for in-process trusted callers only. *)

type manage_request = {
  requester : Grid_gsi.Dn.t;
  credential : Grid_gsi.Credential.t option;
  contact : string;
  action : Protocol.management_action;
}
(** One element of a management batch — the inputs of {!manage_direct},
    as data. *)

val manage_many_direct :
  t ->
  manage_request array ->
  (Protocol.management_reply, Protocol.management_error) result array
(** Batched {!manage_direct}: every request is resolved and
    authenticated individually, then all surviving requests are
    authorized in one callout batch (the Extended mode's many lane) and
    performed. Element-wise the answers, audit records, and journal
    entries match the single-shot path; results come back in request
    order. *)

val submit :
  ?timeout:float ->
  t ->
  credential:Grid_gsi.Credential.t ->
  rsl:string ->
  reply:((Protocol.submit_reply, Protocol.submit_error) result -> unit) ->
  unit
(** Networked submission: traces the Figure 1/2 arrows and delivers the
    reply asynchronously. With a [timeout] (or a resource-level
    [request_timeout]) the reply callback fires exactly once: with the
    result, or with [Request_timeout] if no reply arrived in time — late
    and duplicate replies are discarded. *)

val manage :
  ?timeout:float ->
  t ->
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  contact:string ->
  Protocol.management_action ->
  reply:((Protocol.management_reply, Protocol.management_error) result -> unit) ->
  unit
