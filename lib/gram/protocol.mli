(** The GRAM protocol: management actions, replies, and the extended
    error vocabulary (authorization denial vs authorization-system
    failure). *)

type signal =
  | Suspend
  | Resume
  | Set_priority of int

val signal_to_string : signal -> string

type management_action =
  | Cancel
  | Status
  | Signal of signal

val management_action_to_string : management_action -> string

val to_policy_action : management_action -> Grid_policy.Types.Action.t

type authz_failure =
  | Authz_denied of string
  | Authz_system_failure of string
  | Authz_misconfigured of string

val authz_failure_to_string : authz_failure -> string
val authz_failure_of_callout : Grid_callout.Callout.error -> authz_failure

type submit_error =
  | Authentication_failed of string
  | Gatekeeper_refused of string
  | Authorization_failed of authz_failure
  | Account_mapping_failed of string
  | Bad_rsl of string
  | Sandbox_violation of string list
  | Allocation_refused of string
  | Resource_unavailable of string
  | Request_timeout of string
      (** no reply within the request deadline (dropped hop or partition) *)

val submit_error_to_string : submit_error -> string

type job_state =
  | Pending
  | Active
  | Suspended
  | Done
  | Failed of string
  | Canceled

val job_state_to_string : job_state -> string
val job_state_of_lrm : Grid_lrm.Lrm.state -> job_state

type job_status = {
  contact : string;
  owner : Grid_gsi.Dn.t;
  state : job_state;
  jobtag : string option;
  account : string;
  cpus : int;
}

type submit_reply = {
  job_contact : string;
  submitted_as : string;
}

type management_error =
  | Unknown_job of string
  | Management_authentication_failed of string
  | Not_authorized of authz_failure
  | Invalid_request of string
  | Request_timed_out of string
      (** no reply within the request deadline (dropped hop or partition) *)

val management_error_to_string : management_error -> string

type management_reply =
  | Ack
  | Job_status of job_status
