(* GRAM operating modes.

   [Gt2_baseline] is unmodified GT2 (Section 4): authorization is the
   grid-mapfile check in the Gatekeeper, and only the job initiator may
   manage a job. [Extended] is the paper's design (Section 5): an
   authorization callout is consulted in the Job Manager before job
   creation and before every management action, and management by
   identities other than the initiator becomes possible when policy
   permits. The callout itself is resolved through the runtime
   configuration, as in the prototype. *)

type t =
  | Gt2_baseline
  | Extended of {
      authorization : Grid_callout.Callout.Batch.t;
      (* Two-lane callout: the single lane answers the per-request
         consultations, the many lane lets the job manager authorize a
         whole management batch in one amortized pass. Plain callouts
         enter through [extended], which lifts them with the derived
         (map-the-single-lane) many lane. *)
      (* Optional policy-derived-enforcement hook (the paper's Section 7
         "GT3" direction): given a query that was just authorized,
         return the policy clause the decision rested on so the JMI can
         configure the sandbox from it. *)
      advice : (Grid_callout.Callout.query -> Grid_policy.Types.clause option) option;
      (* Which PEP implementation backs the callout; becomes the
         [backend] label on authorization metrics. *)
      backend : string;
    }

let is_extended = function Extended _ -> true | Gt2_baseline -> false

let backend_label = function Gt2_baseline -> "gt2" | Extended { backend; _ } -> backend

let to_string = function
  | Gt2_baseline -> "GT2 baseline"
  | Extended { backend; _ } -> Printf.sprintf "extended (%s authorization callout)" backend

(* Resolve the Extended mode's callout from a configuration file against a
   registry — the deployment path; misconfiguration yields a mode whose
   callout fails closed with the configuration error. *)
let extended_batch ?advice ?(backend = "custom") authorization =
  Extended { authorization; advice; backend }

let extended ?advice ?backend authorization =
  extended_batch ?advice ?backend (Grid_callout.Callout.Batch.of_callout authorization)

let extended_from_config config registry =
  let authorization =
    match
      Grid_callout.Config.resolve config registry Grid_callout.Config.gram_authz_type
    with
    | Ok authorization -> Grid_callout.Callout.Batch.of_callout authorization
    | Error e -> Grid_callout.Callout.Batch.of_callout (fun _ -> Error e)
  in
  Extended { authorization; advice = None; backend = "config" }

(* Wrap the mode's callout so every consultation is spanned and counted
   under its backend label. GT2 baseline has no callout to wrap; its
   gridmap decisions are counted by the Gatekeeper itself. *)
let instrument ?epoch ~obs = function
  | Gt2_baseline -> Gt2_baseline
  | Extended { authorization; advice; backend } ->
    Extended
      { authorization =
          Grid_callout.Callout.instrument_batch ~backend ?epoch ~obs authorization;
        advice;
        backend }

(* Memoize the mode's callout through a decision cache, scoped under the
   backend label so a shared cache keeps distinct PEPs' keys apart.
   Compose *inside* [instrument]: cache hits still count as
   authorization decisions, they just skip policy evaluation. *)
let with_cache ~cache = function
  | Gt2_baseline -> Gt2_baseline
  | Extended { authorization; advice; backend } ->
    Extended
      { authorization =
          Grid_callout.Cache.with_cache_many cache ~scope:backend authorization;
        advice;
        backend }
