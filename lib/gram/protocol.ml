(* The GRAM protocol: requests, replies and errors.

   Extended relative to GT2 exactly where Section 5.2 says: the [jobtag]
   RSL parameter travels with job requests; management requests may come
   from identities other than the job initiator; and errors distinguish
   authorization denial from authorization-system failure. *)

type signal =
  | Suspend
  | Resume
  | Set_priority of int

let signal_to_string = function
  | Suspend -> "suspend"
  | Resume -> "resume"
  | Set_priority p -> Printf.sprintf "priority=%d" p

(* Management actions a client can direct at a running job. [Status] is
   the paper's "information" action; the batch-control verbs are carried
   as signals, as in GT2. *)
type management_action =
  | Cancel
  | Status
  | Signal of signal

let management_action_to_string = function
  | Cancel -> "cancel"
  | Status -> "status"
  | Signal s -> "signal(" ^ signal_to_string s ^ ")"

(* Map protocol actions onto the policy language's action attribute. *)
let to_policy_action = function
  | Cancel -> Grid_policy.Types.Action.Cancel
  | Status -> Grid_policy.Types.Action.Information
  | Signal _ -> Grid_policy.Types.Action.Signal

(* Authorization failures, as first-class protocol errors (the GT2
   protocol could only say "authorization failed"). *)
type authz_failure =
  | Authz_denied of string
  | Authz_system_failure of string
  | Authz_misconfigured of string

let authz_failure_to_string = function
  | Authz_denied m -> "authorization denied: " ^ m
  | Authz_system_failure m -> "authorization system failure: " ^ m
  | Authz_misconfigured m -> "authorization misconfigured: " ^ m

let authz_failure_of_callout : Grid_callout.Callout.error -> authz_failure = function
  | Grid_callout.Callout.Denied m -> Authz_denied m
  | Grid_callout.Callout.System_error m -> Authz_system_failure m
  | Grid_callout.Callout.Bad_configuration m -> Authz_misconfigured m

type submit_error =
  | Authentication_failed of string
  | Gatekeeper_refused of string      (* GT2 gridmap-level refusal *)
  | Authorization_failed of authz_failure (* JM PEP refusal (extended mode) *)
  | Account_mapping_failed of string
  | Bad_rsl of string
  | Sandbox_violation of string list
  | Allocation_refused of string      (* coarse-grained VO allocation exhausted *)
  | Resource_unavailable of string    (* LRM refused the job *)
  | Request_timeout of string         (* no reply within the request deadline *)

let submit_error_to_string = function
  | Authentication_failed m -> "authentication failed: " ^ m
  | Gatekeeper_refused m -> "gatekeeper refused: " ^ m
  | Authorization_failed f -> authz_failure_to_string f
  | Account_mapping_failed m -> "account mapping failed: " ^ m
  | Bad_rsl m -> "bad RSL: " ^ m
  | Sandbox_violation vs -> "sandbox violation: " ^ String.concat "; " vs
  | Allocation_refused m -> "allocation refused: " ^ m
  | Resource_unavailable m -> "resource unavailable: " ^ m
  | Request_timeout m -> "request timeout: " ^ m

type job_state =
  | Pending
  | Active
  | Suspended
  | Done
  | Failed of string
  | Canceled

let job_state_to_string = function
  | Pending -> "PENDING"
  | Active -> "ACTIVE"
  | Suspended -> "SUSPENDED"
  | Done -> "DONE"
  | Failed m -> "FAILED(" ^ m ^ ")"
  | Canceled -> "CANCELED"

let job_state_of_lrm : Grid_lrm.Lrm.state -> job_state = function
  | Grid_lrm.Lrm.Pending -> Pending
  | Grid_lrm.Lrm.Running -> Active
  | Grid_lrm.Lrm.Suspended -> Suspended
  | Grid_lrm.Lrm.Completed -> Done
  | Grid_lrm.Lrm.Cancelled -> Canceled
  | Grid_lrm.Lrm.Killed why -> Failed why

type job_status = {
  contact : string;
  owner : Grid_gsi.Dn.t;
  state : job_state;
  jobtag : string option;
  account : string;
  cpus : int;
}

type submit_reply = {
  job_contact : string;  (* handle for subsequent management requests *)
  submitted_as : string; (* the local account chosen by the gatekeeper *)
}

type management_error =
  | Unknown_job of string
  | Management_authentication_failed of string
  | Not_authorized of authz_failure
  | Invalid_request of string   (* e.g. resume a job that is not suspended *)
  | Request_timed_out of string (* no reply within the request deadline *)

let management_error_to_string = function
  | Unknown_job c -> "unknown job contact: " ^ c
  | Management_authentication_failed m -> "authentication failed: " ^ m
  | Not_authorized f -> authz_failure_to_string f
  | Invalid_request m -> "invalid request: " ^ m
  | Request_timed_out m -> "request timeout: " ^ m

type management_reply =
  | Ack
  | Job_status of job_status
