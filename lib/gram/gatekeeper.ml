(* The Gatekeeper.

   Authenticates the requesting grid user, authorizes the job invocation
   request (GT2: presence in the grid-mapfile / resolvable account),
   determines the local account, and creates a Job Manager Instance for
   the request (Section 4.1). Challenges are minted here and must be
   answered by the submitted credential — replay of an old credential
   fails. *)

type t = {
  name : string;
  trust : Grid_gsi.Ca.Trust_store.store;
  mapper : Grid_accounts.Mapper.t;
  mode : Mode.t;
  (* Optional PEP at the gatekeeper decision point (Section 5.2: "a PEP
     placed in the Gatekeeper can allow or disallow access based on the
     user's Grid identity"). It sees only job invocations — management
     requests never pass through the Gatekeeper — which is exactly why
     the paper put the main PEP in the Job Manager. *)
  gatekeeper_pep : Grid_callout.Callout.t option;
  allocation : Grid_accounts.Allocation.enforcement option;
  lrm : Grid_lrm.Lrm.t;
  engine : Grid_sim.Engine.t;
  audit : Grid_audit.Audit.t;
  trace : Grid_sim.Trace.t;
  obs : Grid_obs.Obs.t;
  outstanding_challenges : (string, unit) Hashtbl.t;
  mutable submissions : int;
}

let create ?gatekeeper_pep ?allocation ~name ~trust ~mapper ~mode ~lrm ~engine ~audit
    ~trace ~obs () =
  let gatekeeper_pep =
    Option.map (Grid_callout.Callout.instrument ~backend:"gatekeeper" ~obs) gatekeeper_pep
  in
  { name; trust; mapper; mode; gatekeeper_pep; allocation; lrm; engine; audit; trace; obs;
    outstanding_challenges = Hashtbl.create 16; submissions = 0 }

let now t = Grid_sim.Engine.now t.engine

let new_challenge t =
  let challenge = Grid_gsi.Authn.fresh_challenge () in
  Hashtbl.replace t.outstanding_challenges challenge ();
  challenge

let record t ~target label =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:t.name ~target label

let authenticate_raw t (credential : Grid_gsi.Credential.t) =
  let challenge = credential.Grid_gsi.Credential.challenge in
  if not (Hashtbl.mem t.outstanding_challenges challenge) then
    Error (Grid_gsi.Authn.Challenge_mismatch)
  else begin
    Hashtbl.remove t.outstanding_challenges challenge;
    Grid_gsi.Authn.authenticate ~trust:t.trust ~now:(now t) ~challenge credential
  end

(* Instrumented wrappers around the two coarse-grained gatekeeper stages;
   each becomes a child span with an outcome-labelled counter. *)
let observed_authenticate t credential =
  if not (Grid_obs.Obs.enabled t.obs) then authenticate_raw t credential
  else
    Grid_obs.Obs.with_span t.obs "gsi.authenticate" (fun span ->
        let result = authenticate_raw t credential in
        let outcome = match result with Ok _ -> "ok" | Error _ -> "failed" in
        Grid_obs.Span.set_attr span "outcome" outcome;
        Grid_obs.Obs.incr t.obs ~labels:[ ("outcome", outcome) ] "authn_total";
        Grid_obs.Obs.emit t.obs ~layer:"gatekeeper" "authn"
          ([ ("outcome", outcome) ]
          @ (match result with
            | Ok ctx ->
              [ ("subject", Grid_gsi.Dn.to_string ctx.Grid_gsi.Authn.peer) ]
            | Error e -> [ ("reason", Grid_gsi.Authn.error_to_string e) ]));
        result)

let observed_resolve t user =
  let resolve () = Grid_accounts.Mapper.resolve t.mapper ~now:(now t) user in
  if not (Grid_obs.Obs.enabled t.obs) then resolve ()
  else
    Grid_obs.Obs.with_span t.obs "account.map" (fun span ->
        let result = resolve () in
        let outcome =
          match result with
          | Ok _ -> "mapped"
          | Error (Grid_accounts.Mapper.No_local_account _) -> "no_account"
          | Error _ -> "failed"
        in
        Grid_obs.Span.set_attr span "outcome" outcome;
        Grid_obs.Obs.incr t.obs ~labels:[ ("outcome", outcome) ] "account_mappings_total";
        result)

(* The exported authenticate is the instrumented one so that the JMI's
   management-request authentication is counted alongside submissions. *)
let authenticate = observed_authenticate

let submit_inner t ~(credential : Grid_gsi.Credential.t) ~(rsl : string) :
    (Job_manager.t * Protocol.submit_reply, Protocol.submit_error) result =
  let corr_id = Grid_obs.Obs.correlation t.obs in
  (* 1. Authentication (GSI mutual auth). *)
  match observed_authenticate t credential with
  | Error e ->
    Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Authentication
      ?corr_id
      ~outcome:(Grid_audit.Audit.Failure (Grid_gsi.Authn.error_to_string e))
      "job submission";
    Error (Protocol.Authentication_failed (Grid_gsi.Authn.error_to_string e))
  | Ok ctx ->
    let user = ctx.Grid_gsi.Authn.peer in
    Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Authentication
      ?corr_id ~subject:user ~outcome:Grid_audit.Audit.Success "job submission";
    if Grid_gsi.Credential.is_limited credential then begin
      (* GSI limited proxies authenticate but may not start jobs: the
         standard protection against credentials leaked from worker
         nodes being replayed into fresh submissions. *)
      Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Authorization
        ~subject:user
        ~outcome:(Grid_audit.Audit.Failure "limited proxy")
        "gatekeeper refused job startup";
      Error (Protocol.Gatekeeper_refused "limited proxies may not start jobs")
    end
    else
    (* 2. Parse the RSL job description. In baseline mode the jobtag
       parameter does not exist in the protocol. *)
    let parse_result = Grid_rsl.Job.of_string rsl in
    (match parse_result with
    | Error e -> Error (Protocol.Bad_rsl (Grid_rsl.Job.error_to_string e))
    | Ok job ->
      if (not (Mode.is_extended t.mode)) && job.Grid_rsl.Job.jobtag <> None then
        Error (Protocol.Bad_rsl "GT2: unknown RSL attribute 'jobtag'")
      else begin
        (* 2b. Gatekeeper-level PEP, when configured. *)
        let gatekeeper_authz =
          match t.gatekeeper_pep with
          | None -> Ok ()
          | Some pep ->
            record t ~target:"pep" "gatekeeper authorization callout";
            pep
              { Grid_callout.Callout.requester = user;
                requester_credential = Some credential;
                job_owner = None;
                action = Grid_policy.Types.Action.Start;
                job_id = None;
                rsl = Some (Grid_rsl.Job.clause job);
                jobtag = job.Grid_rsl.Job.jobtag }
        in
        match gatekeeper_authz with
        | Error e ->
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Authorization
            ~subject:user
            ~outcome:(Grid_audit.Audit.Failure (Grid_callout.Callout.error_to_string e))
            "gatekeeper PEP";
          Error (Protocol.Authorization_failed (Protocol.authz_failure_of_callout e))
        | Ok () ->
        (* 3. Coarse-grained authorization + account mapping: the
           grid-mapfile check and local-credential selection in one
           resolution step (dynamic accounts extend it transparently). *)
        match observed_resolve t user with
        | Error (Grid_accounts.Mapper.No_local_account _ as e) ->
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Account_mapping
            ~subject:user
            ~outcome:(Grid_audit.Audit.Failure (Grid_accounts.Mapper.error_to_string e))
            "gatekeeper refused";
          Error (Protocol.Gatekeeper_refused (Grid_accounts.Mapper.error_to_string e))
        | Error e ->
          Error (Protocol.Account_mapping_failed (Grid_accounts.Mapper.error_to_string e))
        | Ok mapping ->
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Account_mapping
            ~subject:user ~outcome:Grid_audit.Audit.Success
            (Printf.sprintf "mapped to account %s" mapping.Grid_accounts.Mapper.account);
          (* 4. Create the Job Manager Instance under the local
             credential and hand it the request. *)
          let jmi =
            Job_manager.create ?allocation:t.allocation ~obs:t.obs ~owner:user
              ~account:mapping.Grid_accounts.Mapper.account
              ~limits:mapping.Grid_accounts.Mapper.limits ~job ~mode:t.mode ~lrm:t.lrm
              ~engine:t.engine ~audit:t.audit ~trace:t.trace ()
          in
          record t ~target:("jmi:" ^ Job_manager.contact jmi) "create job manager";
          (match Job_manager.start jmi ~credential:(Some credential) with
          | Error _ as e -> e
          | Ok reply -> Ok (jmi, reply))
      end)

let handle_submit t ~credential ~rsl =
  t.submissions <- t.submissions + 1;
  if not (Grid_obs.Obs.enabled t.obs) then submit_inner t ~credential ~rsl
  else
    Grid_obs.Obs.with_span t.obs "gatekeeper.submit" (fun span ->
        let result = submit_inner t ~credential ~rsl in
        let outcome = match result with Ok _ -> "accepted" | Error _ -> "refused" in
        Grid_obs.Span.set_attr span "outcome" outcome;
        Grid_obs.Obs.incr t.obs ~labels:[ ("outcome", outcome) ] "jobs_submitted_total";
        result)

let submissions t = t.submissions
