(* A GRAM-managed resource: the assembly of Gatekeeper, Job Manager
   Instances, local resource manager, account mapping and audit trail,
   reachable over the simulated network.

   This is "one site" in grid terms. Direct entry points (submit/manage)
   run synchronously at the resource — microbenchmarks use them to measure
   pure decision cost; the networked entry points model the wire hops of
   Figures 1 and 2 and are what the Client uses. *)

type t = {
  name : string;
  engine : Grid_sim.Engine.t;
  network : Grid_sim.Network.t;
  gatekeeper : Gatekeeper.t;
  lrm : Grid_lrm.Lrm.t;
  audit : Grid_audit.Audit.t;
  trace : Grid_sim.Trace.t;
  obs : Grid_obs.Obs.t;
  request_timeout : float option;
  authz_cache : Grid_callout.Cache.t option;
  jmis : (string, Job_manager.t) Hashtbl.t;
}

(* Bridge injected network faults into the metrics registry so chaos runs
   are measurable: network_faults_total{event,link}. *)
let observe_faults ~obs network =
  if Grid_obs.Obs.enabled obs then
    Grid_sim.Network.on_fault network (fun event ->
        let event_label, link =
          match event with
          | Grid_sim.Network.Dropped link -> ("dropped", link)
          | Grid_sim.Network.Duplicated link -> ("duplicated", link)
          | Grid_sim.Network.Delayed (link, _) -> ("delayed", link)
          | Grid_sim.Network.Partitioned link -> ("partitioned", link)
        in
        Grid_obs.Obs.incr obs
          ~labels:[ ("event", event_label); ("link", link) ]
          "network_faults_total")

let create ?(name = "resource") ?network ?gatekeeper_pep ?allocation ?obs
    ?request_timeout ?authz_cache ~trust ~mapper ~mode ~lrm ~engine () =
  let network =
    match network with Some n -> n | None -> Grid_sim.Network.create engine
  in
  let obs = match obs with Some o -> o | None -> Grid_obs.Obs.of_engine engine in
  observe_faults ~obs network;
  let audit = Grid_audit.Audit.create () in
  let trace = Grid_sim.Trace.create () in
  (* Cache inside instrumentation: a hit is still a counted decision. *)
  let mode =
    match authz_cache with None -> mode | Some cache -> Mode.with_cache ~cache mode
  in
  let mode = Mode.instrument ~obs mode in
  (* The gatekeeper PEP shares the cache under its own scope (it answers
     from different policy than the job manager's callout). *)
  let gatekeeper_pep =
    match (gatekeeper_pep, authz_cache) with
    | Some pep, Some cache ->
      Some (Grid_callout.Cache.with_cache cache ~scope:"gatekeeper" pep)
    | pep, _ -> pep
  in
  let gatekeeper =
    Gatekeeper.create ?gatekeeper_pep ?allocation ~name:(name ^ ":gatekeeper") ~trust
      ~mapper ~mode ~lrm ~engine ~audit ~trace ~obs ()
  in
  { name; engine; network; gatekeeper; lrm; audit; trace; obs; request_timeout;
    authz_cache; jmis = Hashtbl.create 32 }

let name t = t.name
let engine t = t.engine
let network t = t.network
let lrm t = t.lrm
let audit t = t.audit
let trace t = t.trace
let obs t = t.obs
let authz_cache t = t.authz_cache
let gatekeeper t = t.gatekeeper

let now t = Grid_sim.Engine.now t.engine

let find_jmi t contact = Hashtbl.find_opt t.jmis contact

let jobs t = Hashtbl.fold (fun _ jmi acc -> jmi :: acc) t.jmis []

(* GT2's callback contact: the client registers a listener and the Job
   Manager sends job state updates over the network as they happen. Only
   transitions after registration are delivered — the submit reply
   already tells the client the initial state. *)
let register_callback t ~contact ~(on_state_change : Protocol.job_state -> unit) =
  match find_jmi t contact with
  | None -> Error (Protocol.Unknown_job contact)
  | Some jmi -> begin
    match Job_manager.lrm_job_id jmi with
    | None -> Error (Protocol.Invalid_request "job was never started")
    | Some lrm_id ->
      Grid_lrm.Lrm.on_event t.lrm (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
          if String.equal job.Grid_lrm.Lrm.id lrm_id then begin
            let state = Protocol.job_state_of_lrm job.Grid_lrm.Lrm.state in
            Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
                on_state_change state)
          end);
      Ok ()
  end

let jobs_with_tag t tag =
  List.filter (fun jmi -> Job_manager.jobtag jmi = Some tag) (jobs t)

(* --- Direct (in-resource) entry points -------------------------------- *)

let new_challenge t = Gatekeeper.new_challenge t.gatekeeper

let submit_direct t ~credential ~rsl =
  match Gatekeeper.handle_submit t.gatekeeper ~credential ~rsl with
  | Error _ as e -> e
  | Ok (jmi, reply) ->
    Hashtbl.replace t.jmis (Job_manager.contact jmi) jmi;
    Ok reply

(* The JMI "accepts, authenticates and authorizes management requests"
   (Section 4.2): when a credential accompanies the request it must
   validate (chain, expiry, revocation, challenge freshness) and assert
   the claimed requester identity. A credential-less call is reserved
   for in-process trusted callers (tests, monitoring). *)
let manage_direct t ~requester ?credential ~contact action =
  match find_jmi t contact with
  | None -> Error (Protocol.Unknown_job contact)
  | Some jmi -> begin
    match credential with
    | None -> Job_manager.manage jmi ~requester action
    | Some credential -> begin
      match Gatekeeper.authenticate t.gatekeeper credential with
      | Error e ->
        Error
          (Protocol.Management_authentication_failed (Grid_gsi.Authn.error_to_string e))
      | Ok ctx ->
        if not (Grid_gsi.Dn.equal ctx.Grid_gsi.Authn.peer requester) then
          Error
            (Protocol.Management_authentication_failed
               (Printf.sprintf "credential authenticates %s, request claims %s"
                  (Grid_gsi.Dn.to_string ctx.Grid_gsi.Authn.peer)
                  (Grid_gsi.Dn.to_string requester)))
        else Job_manager.manage jmi ~requester ~credential action
    end
  end

(* --- Networked entry points ------------------------------------------- *)

(* Each networked request carries a detached "gram.request" span covering
   the full round trip (request hop, resource-side processing, reply
   hop) — the only stage with nonzero simulated latency, since everything
   inside the resource happens within one simulation event. The
   resource-side work runs under [in_scope] so its spans nest beneath the
   request. *)
let request_span t ~kind =
  if Grid_obs.Obs.enabled t.obs then begin
    Grid_obs.Obs.incr t.obs ~labels:[ ("kind", kind) ] "gram_requests_total";
    Grid_obs.Obs.start_span t.obs ~attrs:[ ("kind", kind) ] "gram.request"
  end
  else Grid_obs.Span.null

(* A request settles exactly once: either the reply hop delivers a result
   or the timeout fires, and whichever comes second is discarded (a late
   reply after a timeout models a stale datagram; a duplicate reply is
   absorbed the same way). This is what guarantees "no hangs, no double
   replies" under fault injection. *)
let settle_guard t ~kind ~span reply =
  let settled = ref false in
  fun ~timed_out result ->
    if not !settled then begin
      settled := true;
      if timed_out && Grid_obs.Obs.enabled t.obs then begin
        Grid_obs.Span.set_attr span "outcome" "timeout";
        Grid_obs.Obs.incr t.obs ~labels:[ ("kind", kind) ] "gram_request_timeouts_total"
      end;
      Grid_obs.Obs.finish_span t.obs span;
      reply result
    end

let arm_timeout t ~timeout ~settle timeout_error =
  match timeout with
  | None -> ()
  | Some budget ->
    if budget <= 0.0 then
      settle ~timed_out:true
        (Error (timeout_error "request deadline already expired"))
    else
      Grid_sim.Engine.schedule_after t.engine budget (fun () ->
          settle ~timed_out:true
            (Error (timeout_error (Printf.sprintf "no reply within %gs" budget))))

let effective_timeout t timeout =
  match timeout with Some _ as s -> s | None -> t.request_timeout

let submit ?timeout t ~credential ~rsl ~reply =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:"client"
    ~target:(t.name ^ ":gatekeeper") "job request + credentials";
  let span = request_span t ~kind:"submit" in
  let settle = settle_guard t ~kind:"submit" ~span reply in
  arm_timeout t ~timeout:(effective_timeout t timeout) ~settle (fun m ->
      Protocol.Request_timeout m);
  Grid_sim.Network.send ~link:"client->resource" t.network (fun () ->
      let result =
        Grid_obs.Obs.in_scope t.obs span (fun () -> submit_direct t ~credential ~rsl)
      in
      (match result with
      | Ok r ->
        Grid_sim.Trace.record t.trace ~at:(now t) ~source:("jmi:" ^ r.Protocol.job_contact)
          ~target:"client" "job contact"
      | Error _ ->
        Grid_sim.Trace.record t.trace ~at:(now t) ~source:(t.name ^ ":gatekeeper")
          ~target:"client" "submission error");
      Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
          settle ~timed_out:false result))

let manage ?timeout t ~requester ?credential ~contact action ~reply =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:"client" ~target:("jmi:" ^ contact)
    (Protocol.management_action_to_string action);
  let span = request_span t ~kind:"manage" in
  let settle = settle_guard t ~kind:"manage" ~span reply in
  arm_timeout t ~timeout:(effective_timeout t timeout) ~settle (fun m ->
      Protocol.Request_timed_out m);
  Grid_sim.Network.send ~link:"client->resource" t.network (fun () ->
      let result =
        Grid_obs.Obs.in_scope t.obs span (fun () ->
            manage_direct t ~requester ?credential ~contact action)
      in
      Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
          settle ~timed_out:false result))
