(* A GRAM-managed resource: the assembly of Gatekeeper, Job Manager
   Instances, local resource manager, account mapping and audit trail,
   reachable over the simulated network.

   This is "one site" in grid terms. Direct entry points (submit/manage)
   run synchronously at the resource — microbenchmarks use them to measure
   pure decision cost; the networked entry points model the wire hops of
   Figures 1 and 2 and are what the Client uses. *)

type t = {
  name : string;
  engine : Grid_sim.Engine.t;
  network : Grid_sim.Network.t;
  gatekeeper : Gatekeeper.t;
  lrm : Grid_lrm.Lrm.t;
  audit : Grid_audit.Audit.t;
  trace : Grid_sim.Trace.t;
  obs : Grid_obs.Obs.t;
  request_timeout : float option;
  authz_cache : Grid_callout.Cache.t option;
  mode : Mode.t;  (* the wrapped (cached + instrumented) mode, for restore *)
  store : Grid_store.Store.t option;
  policy_epoch : (unit -> int) option;
  jmis : (string, Job_manager.t) Hashtbl.t;
  (* Durable-state mirrors, only populated when [store] is present: the
     journalled creation record per contact (the snapshot source) and the
     scheduler-id -> contact map driving terminal-state journalling. *)
  entries : (string, Persist.job_entry) Hashtbl.t;
  lrm_contacts : (string, string) Hashtbl.t;
}

(* Bridge injected network faults into the metrics registry and the wide
   event stream so chaos runs are measurable and correlatable:
   network_faults_total{event,link} plus a "net.fault" event. *)
let observe_faults ~obs network =
  if Grid_obs.Obs.enabled obs then
    Grid_sim.Network.on_fault network (fun event ->
        let event_label, link =
          match event with
          | Grid_sim.Network.Dropped link -> ("dropped", link)
          | Grid_sim.Network.Duplicated link -> ("duplicated", link)
          | Grid_sim.Network.Delayed (link, _) -> ("delayed", link)
          | Grid_sim.Network.Partitioned link -> ("partitioned", link)
        in
        Grid_obs.Obs.incr obs
          ~labels:[ ("event", event_label); ("link", link) ]
          "network_faults_total";
        Grid_obs.Obs.emit obs ~layer:"net" "net.fault"
          [ ("event", event_label); ("link", link) ])

(* Serialize the live job table for snapshot compaction: one Job_created
   record per contact, in sorted contact order so snapshots are
   deterministic across runs with the same seed. *)
let snapshot_entries entries () =
  Hashtbl.fold (fun _ entry acc -> entry :: acc) entries []
  |> List.sort (fun (a : Persist.job_entry) b -> String.compare a.contact b.contact)
  |> List.map (fun entry -> Persist.encode (Persist.Job_created entry))

let record_event t event =
  match t.store with
  | None -> ()
  | Some store -> Grid_store.Store.append store (Persist.encode event)

let create ?(name = "resource") ?network ?gatekeeper_pep ?allocation ?obs
    ?request_timeout ?authz_cache ?store ?policy_epoch ~trust ~mapper ~mode ~lrm ~engine
    () =
  let network =
    match network with Some n -> n | None -> Grid_sim.Network.create engine
  in
  let obs = match obs with Some o -> o | None -> Grid_obs.Obs.of_engine engine in
  observe_faults ~obs network;
  let audit = Grid_audit.Audit.create () in
  let trace = Grid_sim.Trace.create () in
  (* Cache inside instrumentation: a hit is still a counted decision. *)
  let mode =
    match authz_cache with None -> mode | Some cache -> Mode.with_cache ~cache mode
  in
  let mode = Mode.instrument ?epoch:policy_epoch ~obs mode in
  (* The gatekeeper PEP shares the cache under its own scope (it answers
     from different policy than the job manager's callout). *)
  let gatekeeper_pep =
    match (gatekeeper_pep, authz_cache) with
    | Some pep, Some cache ->
      Some (Grid_callout.Cache.with_cache cache ~scope:"gatekeeper" pep)
    | pep, _ -> pep
  in
  let gatekeeper =
    Gatekeeper.create ?gatekeeper_pep ?allocation ~name:(name ^ ":gatekeeper") ~trust
      ~mapper ~mode ~lrm ~engine ~audit ~trace ~obs ()
  in
  let t =
    { name; engine; network; gatekeeper; lrm; audit; trace; obs; request_timeout;
      authz_cache; mode; store; policy_epoch; jmis = Hashtbl.create 32;
      entries = Hashtbl.create 32; lrm_contacts = Hashtbl.create 32 }
  in
  (* Degraded authorization decisions belong in the audit trail, not just
     the event stream: a fail-open conversion is a security-relevant
     choice an administrator must be able to reconstruct later. *)
  if Grid_obs.Obs.enabled obs then
    Grid_obs.Event.subscribe (Grid_obs.Obs.events obs) (fun e ->
        if String.equal e.Grid_obs.Event.kind "authz.degraded" then
          let attr name =
            Option.value ~default:"?"
              (List.assoc_opt name e.Grid_obs.Event.attrs)
          in
          Grid_audit.Audit.log audit ~at:e.Grid_obs.Event.at
            ~kind:Grid_audit.Audit.Authorization
            ?policy_epoch:(Option.map (fun epoch -> epoch ()) policy_epoch)
            ?corr_id:e.Grid_obs.Event.corr
            ~outcome:
              (Grid_audit.Audit.Failure
                 (Printf.sprintf "authorization degraded (%s)" (attr "mode")))
            (Printf.sprintf "backend outage: %s -> %s under %s" (attr "original")
               (attr "final") (attr "mode")));
  (match store with
  | None -> ()
  | Some store ->
    Grid_store.Store.set_snapshot_source store (snapshot_entries t.entries);
    (* One listener journals every tracked job's terminal transition —
       the record a restarted job manager needs to explain history, even
       though the surviving LRM stays authoritative for current state. *)
    Grid_lrm.Lrm.on_event lrm (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
        match Hashtbl.find_opt t.lrm_contacts job.Grid_lrm.Lrm.id with
        | None -> ()
        | Some contact -> begin
          match job.Grid_lrm.Lrm.state with
          | Grid_lrm.Lrm.Completed | Grid_lrm.Lrm.Cancelled | Grid_lrm.Lrm.Killed _ ->
            Hashtbl.remove t.lrm_contacts job.Grid_lrm.Lrm.id;
            let state = Grid_lrm.Lrm.state_to_string job.Grid_lrm.Lrm.state in
            record_event t
              (Persist.Job_state
                 { contact; state; at = Grid_sim.Engine.now engine });
            Grid_obs.Obs.emit obs ~layer:"gram" "job.terminal"
              [ ("contact", contact); ("state", state); ("resource", name) ]
          | Grid_lrm.Lrm.Pending | Grid_lrm.Lrm.Running | Grid_lrm.Lrm.Suspended -> ()
        end));
  t

let name t = t.name
let engine t = t.engine
let network t = t.network
let lrm t = t.lrm
let audit t = t.audit
let trace t = t.trace
let obs t = t.obs
let authz_cache t = t.authz_cache
let gatekeeper t = t.gatekeeper
let store t = t.store

let now t = Grid_sim.Engine.now t.engine

let current_epoch t = Option.map (fun epoch -> epoch ()) t.policy_epoch

let epoch_attr t =
  match current_epoch t with
  | None -> []
  | Some e -> [ ("epoch", string_of_int e) ]

let find_jmi t contact = Hashtbl.find_opt t.jmis contact

let jobs t = Hashtbl.fold (fun _ jmi acc -> jmi :: acc) t.jmis []

(* GT2's callback contact: the client registers a listener and the Job
   Manager sends job state updates over the network as they happen. Only
   transitions after registration are delivered — the submit reply
   already tells the client the initial state. *)
let register_callback t ~contact ~(on_state_change : Protocol.job_state -> unit) =
  match find_jmi t contact with
  | None -> Error (Protocol.Unknown_job contact)
  | Some jmi -> begin
    match Job_manager.lrm_job_id jmi with
    | None -> Error (Protocol.Invalid_request "job was never started")
    | Some lrm_id ->
      Grid_lrm.Lrm.on_event t.lrm (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
          if String.equal job.Grid_lrm.Lrm.id lrm_id then begin
            let state = Protocol.job_state_of_lrm job.Grid_lrm.Lrm.state in
            Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
                on_state_change state)
          end);
      Ok ()
  end

let jobs_with_tag t tag =
  List.filter (fun jmi -> Job_manager.jobtag jmi = Some tag) (jobs t)

(* --- Direct (in-resource) entry points -------------------------------- *)

let new_challenge t = Gatekeeper.new_challenge t.gatekeeper

let submit_direct t ~credential ~rsl =
  (* Everything this submission causes — authentication, the callout
     decision, job creation, the LRM hand-off — shares one correlation
     id, minted here unless the networked wrapper already supplied it. *)
  Grid_obs.Obs.ensure_correlation t.obs (fun () ->
      match Gatekeeper.handle_submit t.gatekeeper ~credential ~rsl with
      | Error _ as e -> e
      | Ok (jmi, reply) ->
        let contact = Job_manager.contact jmi in
        Hashtbl.replace t.jmis contact jmi;
        let durable = Option.is_some t.store in
        if durable then begin
          let job = Job_manager.job jmi in
          let entry =
            { Persist.contact;
              owner = Job_manager.owner jmi;
              account = Job_manager.account jmi;
              jobtag = Job_manager.jobtag jmi;
              rsl = Grid_rsl.Job.to_string job;
              rsl_fingerprint = Persist.fingerprint job;
              policy_epoch = current_epoch t;
              limits = Job_manager.limits jmi;
              lrm_job = Job_manager.lrm_job_id jmi;
              created_at = now t }
          in
          Hashtbl.replace t.entries contact entry;
          Option.iter
            (fun lrm_id -> Hashtbl.replace t.lrm_contacts lrm_id contact)
            entry.Persist.lrm_job;
          record_event t (Persist.Job_created entry)
        end;
        Grid_obs.Obs.emit t.obs ~layer:"gram" "job.created"
          ([ ("contact", contact);
             ("owner", Grid_gsi.Dn.to_string (Job_manager.owner jmi));
             ("durable", string_of_bool durable);
             ("resource", t.name) ]
          @ epoch_attr t);
        Ok reply)

(* The JMI "accepts, authenticates and authorizes management requests"
   (Section 4.2): when a credential accompanies the request it must
   validate (chain, expiry, revocation, challenge freshness) and assert
   the claimed requester identity. A credential-less call is reserved
   for in-process trusted callers (tests, monitoring). *)
let manage_direct t ~requester ?credential ~contact action =
  Grid_obs.Obs.ensure_correlation t.obs (fun () ->
  let result =
    match find_jmi t contact with
    | None -> Error (Protocol.Unknown_job contact)
    | Some jmi -> begin
      match credential with
      | None -> Job_manager.manage jmi ~requester action
      | Some credential -> begin
        match Gatekeeper.authenticate t.gatekeeper credential with
        | Error e ->
          Error
            (Protocol.Management_authentication_failed (Grid_gsi.Authn.error_to_string e))
        | Ok ctx ->
          if not (Grid_gsi.Dn.equal ctx.Grid_gsi.Authn.peer requester) then
            Error
              (Protocol.Management_authentication_failed
                 (Printf.sprintf "credential authenticates %s, request claims %s"
                    (Grid_gsi.Dn.to_string ctx.Grid_gsi.Authn.peer)
                    (Grid_gsi.Dn.to_string requester)))
          else Job_manager.manage jmi ~requester ~credential action
      end
    end
  in
  (* State-changing management outcomes are part of the job's durable
     history (who cancelled/signalled, and whether policy allowed it);
     status reads are not journalled. *)
  (match action with
  | Protocol.Cancel | Protocol.Signal _ ->
    if Option.is_some t.store && Hashtbl.mem t.jmis contact then
      record_event t
        (Persist.Management
           { contact;
             requester;
             action = Protocol.management_action_to_string action;
             outcome =
               (match result with
               | Ok _ -> "ok"
               | Error (Protocol.Not_authorized _) -> "denied"
               | Error _ -> "error");
             at = now t })
  | Protocol.Status -> ());
  result)

(* One element of a management batch: the same inputs [manage_direct]
   takes, as data. *)
type manage_request = {
  requester : Grid_gsi.Dn.t;
  credential : Grid_gsi.Credential.t option;
  contact : string;
  action : Protocol.management_action;
}

(* Batched [manage_direct]: resolve and authenticate every request
   first, then authorize-and-perform all surviving requests through
   [Job_manager.manage_many] — one callout batch for the whole tick in
   extended mode. Lookup failures and authentication refusals answer in
   place without consuming a callout, exactly as the single-shot path;
   journalling follows the same state-changing-actions-only rule.
   Results preserve request order. *)
let manage_many_direct t (requests : manage_request array) :
    (Protocol.management_reply, Protocol.management_error) result array =
  Grid_obs.Obs.ensure_correlation t.obs (fun () ->
      let n = Array.length requests in
      let results = Array.make n (Error (Protocol.Invalid_request "unanswered")) in
      let ready = ref [] in
      for i = 0 to n - 1 do
        let r = requests.(i) in
        match find_jmi t r.contact with
        | None -> results.(i) <- Error (Protocol.Unknown_job r.contact)
        | Some jmi -> begin
          match r.credential with
          | None -> ready := (i, jmi) :: !ready
          | Some credential -> begin
            match Gatekeeper.authenticate t.gatekeeper credential with
            | Error e ->
              results.(i) <-
                Error
                  (Protocol.Management_authentication_failed
                     (Grid_gsi.Authn.error_to_string e))
            | Ok ctx ->
              if not (Grid_gsi.Dn.equal ctx.Grid_gsi.Authn.peer r.requester) then
                results.(i) <-
                  Error
                    (Protocol.Management_authentication_failed
                       (Printf.sprintf "credential authenticates %s, request claims %s"
                          (Grid_gsi.Dn.to_string ctx.Grid_gsi.Authn.peer)
                          (Grid_gsi.Dn.to_string r.requester)))
              else ready := (i, jmi) :: !ready
          end
        end
      done;
      let ready = Array.of_list (List.rev !ready) in
      let items =
        Array.map
          (fun (i, jmi) ->
            let r = requests.(i) in
            (jmi, r.requester, r.credential, r.action))
          ready
      in
      let replies = Job_manager.manage_many items in
      Array.iteri (fun k (i, _) -> results.(i) <- replies.(k)) ready;
      Array.iteri
        (fun i r ->
          match r.action with
          | Protocol.Cancel | Protocol.Signal _ ->
            if Option.is_some t.store && Hashtbl.mem t.jmis r.contact then
              record_event t
                (Persist.Management
                   { contact = r.contact;
                     requester = r.requester;
                     action = Protocol.management_action_to_string r.action;
                     outcome =
                       (match results.(i) with
                       | Ok _ -> "ok"
                       | Error (Protocol.Not_authorized _) -> "denied"
                       | Error _ -> "error");
                     at = now t })
          | Protocol.Status -> ())
        requests;
      results)

(* --- Crash and recovery ------------------------------------------------ *)

(* Kill the job manager process: every in-memory JMI is lost, and the
   store's unsynced tail is lost or torn per the disk's fault profile.
   The LRM is a separate process (the batch system) and survives, as do
   already-registered allocation-settlement listeners — exactly GT2's
   job-manager-restart situation. *)
let crash t =
  let lost = Hashtbl.length t.jmis in
  Hashtbl.reset t.jmis;
  Hashtbl.reset t.entries;
  Hashtbl.reset t.lrm_contacts;
  Option.iter Grid_store.Store.crash t.store;
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:t.name ~target:t.name
    "job manager crashed";
  if Grid_obs.Obs.enabled t.obs then
    Grid_obs.Obs.incr t.obs ~labels:[ ("resource", t.name) ] "resource_crashes_total";
  Grid_obs.Obs.emit t.obs ~layer:"resource" "resource.crashed"
    ([ ("lost", string_of_int lost); ("resource", t.name) ] @ epoch_attr t);
  Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Recovery
    ?policy_epoch:(current_epoch t)
    ?corr_id:(Grid_obs.Obs.correlation t.obs)
    ~outcome:(Grid_audit.Audit.Failure (Printf.sprintf "%d in-memory JMIs lost" lost))
    "job manager crashed"

type recovery_summary = {
  jobs_restored : int;
  records_replayed : int;
  dropped_bytes : int;
  stale_epoch_jobs : int;
  decode_failures : int;
  duration : float;
}

let recover t =
  match t.store with
  | None ->
    { jobs_restored = 0;
      records_replayed = 0;
      dropped_bytes = 0;
      stale_epoch_jobs = 0;
      decode_failures = 0;
      duration = 0.0 }
  | Some store ->
    let started = Sys.time () in
    let replayed = Grid_store.Store.recover store in
    let { Persist.entries; events; decode_failures } =
      Persist.rebuild ~snapshot:replayed.Grid_store.Store.snapshot_records
        ~journal:replayed.Grid_store.Store.journal_records
    in
    let current_epoch = Option.map (fun epoch -> epoch ()) t.policy_epoch in
    let stale = ref 0 in
    let restored = ref 0 in
    let failures = ref decode_failures in
    List.iter
      (fun (e : Persist.job_entry) ->
        match Grid_rsl.Job.of_string e.Persist.rsl with
        | Error _ -> incr failures
        | Ok job ->
          let jmi =
            Job_manager.restore ~obs:t.obs ~contact:e.Persist.contact
              ~owner:e.Persist.owner ~account:e.Persist.account ~limits:e.Persist.limits
              ~job ~mode:t.mode ~lrm:t.lrm ~engine:t.engine ~audit:t.audit ~trace:t.trace
              ~lrm_job:e.Persist.lrm_job ()
          in
          Hashtbl.replace t.jmis e.Persist.contact jmi;
          Hashtbl.replace t.entries e.Persist.contact e;
          Option.iter
            (fun lrm_id -> Hashtbl.replace t.lrm_contacts lrm_id e.Persist.contact)
            e.Persist.lrm_job;
          incr restored;
          Grid_obs.Obs.emit t.obs ~layer:"resource" "job.restored"
            [ ("contact", e.Persist.contact);
              ("resource", t.name);
              ("admitted_epoch",
               match e.Persist.policy_epoch with
               | Some ep -> string_of_int ep
               | None -> "?") ];
          match (current_epoch, e.Persist.policy_epoch) with
          | Some now_epoch, Some then_epoch when now_epoch <> then_epoch -> incr stale
          | _ -> ())
      entries;
    (* Policy may have been reloaded while the job manager was down:
       decisions memoized before the crash must not answer for the new
       epoch, so the cache is flushed unconditionally and stale-epoch
       admissions are surfaced for re-validation through the callout. *)
    Option.iter Grid_callout.Cache.invalidate t.authz_cache;
    let duration = Sys.time () -. started in
    if Grid_obs.Obs.enabled t.obs then begin
      Grid_obs.Obs.incr t.obs ~labels:[ ("resource", t.name) ] "resource_recoveries_total";
      Grid_obs.Obs.incr t.obs ~by:(float_of_int !stale)
        ~labels:[ ("resource", t.name) ]
        "recovery_epoch_mismatches_total";
      Grid_obs.Obs.observe t.obs "recovery_duration_seconds" duration
    end;
    Grid_sim.Trace.record t.trace ~at:(now t) ~source:t.name ~target:t.name
      "job manager recovered";
    Grid_obs.Obs.emit t.obs ~layer:"resource" "resource.recovered"
      ([ ("restored", string_of_int !restored);
         ("resource", t.name);
         ("replayed", string_of_int events);
         ("dropped_bytes",
          string_of_int replayed.Grid_store.Store.dropped_bytes);
         ("decode_failures", string_of_int !failures);
         ("stale", string_of_int !stale) ]
      @ epoch_attr t);
    Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Recovery
      ?policy_epoch:current_epoch
      ?corr_id:(Grid_obs.Obs.correlation t.obs)
      ~outcome:Grid_audit.Audit.Success
      (Printf.sprintf
         "replayed %d records (%d snapshot, %d journal), restored %d jobs%s%s" events
         (List.length replayed.Grid_store.Store.snapshot_records)
         (List.length replayed.Grid_store.Store.journal_records)
         !restored
         (if replayed.Grid_store.Store.dropped_bytes > 0 then
            Printf.sprintf ", dropped %d corrupt tail bytes"
              replayed.Grid_store.Store.dropped_bytes
          else "")
         (if !stale > 0 then
            Printf.sprintf ", %d jobs admitted under a stale policy epoch" !stale
          else ""));
    { jobs_restored = !restored;
      records_replayed = events;
      dropped_bytes = replayed.Grid_store.Store.dropped_bytes;
      stale_epoch_jobs = !stale;
      decode_failures = !failures;
      duration }

(* --- Networked entry points ------------------------------------------- *)

(* Each networked request carries a detached "gram.request" span covering
   the full round trip (request hop, resource-side processing, reply
   hop) — the only stage with nonzero simulated latency, since everything
   inside the resource happens within one simulation event. The
   resource-side work runs under [in_scope] so its spans nest beneath the
   request. *)
let request_span t ~kind =
  if Grid_obs.Obs.enabled t.obs then begin
    Grid_obs.Obs.incr t.obs
      ~labels:[ ("kind", kind); ("resource", t.name) ]
      "gram_requests_total";
    Grid_obs.Obs.start_span t.obs ~attrs:[ ("kind", kind) ] "gram.request"
  end
  else Grid_obs.Span.null

(* A request settles exactly once: either the reply hop delivers a result
   or the timeout fires, and whichever comes second is discarded (a late
   reply after a timeout models a stale datagram; a duplicate reply is
   absorbed the same way). This is what guarantees "no hangs, no double
   replies" under fault injection. *)
let settle_guard t ~kind ~span reply =
  let settled = ref false in
  fun ~timed_out result ->
    if not !settled then begin
      settled := true;
      if timed_out && Grid_obs.Obs.enabled t.obs then begin
        Grid_obs.Span.set_attr span "outcome" "timeout";
        Grid_obs.Obs.incr t.obs
          ~labels:[ ("kind", kind); ("resource", t.name) ]
          "gram_request_timeouts_total"
      end;
      Grid_obs.Obs.finish_span t.obs span;
      reply result
    end

let arm_timeout t ~timeout ~settle timeout_error =
  match timeout with
  | None -> ()
  | Some budget ->
    if budget <= 0.0 then
      settle ~timed_out:true
        (Error (timeout_error "request deadline already expired"))
    else
      Grid_sim.Engine.schedule_after t.engine budget (fun () ->
          settle ~timed_out:true
            (Error (timeout_error (Printf.sprintf "no reply within %gs" budget))))

let effective_timeout t timeout =
  match timeout with Some _ as s -> s | None -> t.request_timeout

(* Each networked request mints the correlation id at the client edge, so
   the request event, every resource-side event its processing causes
   (the delivery continuation re-establishes the id — the ambient stack
   does not survive the scheduling gap), the reply and even a timeout all
   share one chain. *)
let submit ?timeout t ~credential ~rsl ~reply =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:"client"
    ~target:(t.name ^ ":gatekeeper") "job request + credentials";
  let corr = Grid_obs.Obs.fresh_correlation t.obs in
  Grid_obs.Obs.emit t.obs ~corr ~layer:"gram" "gram.request" [ ("kind", "submit") ];
  let span = request_span t ~kind:"submit" in
  let settle = settle_guard t ~kind:"submit" ~span reply in
  let settle ~timed_out result =
    if timed_out then
      Grid_obs.Obs.emit t.obs ~corr ~layer:"gram" "gram.timeout"
        [ ("kind", "submit") ];
    settle ~timed_out result
  in
  arm_timeout t ~timeout:(effective_timeout t timeout) ~settle (fun m ->
      Protocol.Request_timeout m);
  Grid_sim.Network.send ~link:"client->resource" t.network (fun () ->
      Grid_obs.Obs.with_correlation t.obs ~corr (fun () ->
          let result =
            Grid_obs.Obs.in_scope t.obs span (fun () -> submit_direct t ~credential ~rsl)
          in
          (match result with
          | Ok r ->
            Grid_sim.Trace.record t.trace ~at:(now t)
              ~source:("jmi:" ^ r.Protocol.job_contact) ~target:"client" "job contact"
          | Error _ ->
            Grid_sim.Trace.record t.trace ~at:(now t) ~source:(t.name ^ ":gatekeeper")
              ~target:"client" "submission error");
          Grid_obs.Obs.emit t.obs ~layer:"gram" "gram.reply"
            [ ("kind", "submit");
              ("outcome", match result with Ok _ -> "ok" | Error _ -> "error") ];
          Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
              settle ~timed_out:false result)))

let manage ?timeout t ~requester ?credential ~contact action ~reply =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:"client" ~target:("jmi:" ^ contact)
    (Protocol.management_action_to_string action);
  let corr = Grid_obs.Obs.fresh_correlation t.obs in
  Grid_obs.Obs.emit t.obs ~corr ~layer:"gram" "gram.request"
    [ ("kind", "manage");
      ("action", Protocol.management_action_to_string action);
      ("contact", contact) ];
  let span = request_span t ~kind:"manage" in
  let settle = settle_guard t ~kind:"manage" ~span reply in
  let settle ~timed_out result =
    if timed_out then
      Grid_obs.Obs.emit t.obs ~corr ~layer:"gram" "gram.timeout"
        [ ("kind", "manage"); ("contact", contact) ];
    settle ~timed_out result
  in
  arm_timeout t ~timeout:(effective_timeout t timeout) ~settle (fun m ->
      Protocol.Request_timed_out m);
  Grid_sim.Network.send ~link:"client->resource" t.network (fun () ->
      Grid_obs.Obs.with_correlation t.obs ~corr (fun () ->
          let result =
            Grid_obs.Obs.in_scope t.obs span (fun () ->
                manage_direct t ~requester ?credential ~contact action)
          in
          Grid_obs.Obs.emit t.obs ~layer:"gram" "gram.reply"
            [ ("kind", "manage");
              ("outcome", match result with Ok _ -> "ok" | Error _ -> "error") ];
          Grid_sim.Network.send ~link:"resource->client" t.network (fun () ->
              settle ~timed_out:false result)))
