(** The Gatekeeper: authentication, coarse-grained authorization, account
    mapping, and Job Manager creation. *)

type t

val create :
  ?gatekeeper_pep:Grid_callout.Callout.t ->
  ?allocation:Grid_accounts.Allocation.enforcement ->
  name:string ->
  trust:Grid_gsi.Ca.Trust_store.store ->
  mapper:Grid_accounts.Mapper.t ->
  mode:Mode.t ->
  lrm:Grid_lrm.Lrm.t ->
  engine:Grid_sim.Engine.t ->
  audit:Grid_audit.Audit.t ->
  trace:Grid_sim.Trace.t ->
  obs:Grid_obs.Obs.t ->
  unit ->
  t
(** [gatekeeper_pep] installs an additional policy evaluation point at
    the gatekeeper decision domain (Section 5.2); it sees job
    invocations only — management requests bypass the Gatekeeper, which
    is why the paper's primary PEP lives in the Job Manager. It is
    wrapped with [Grid_callout.Callout.instrument] under backend
    ["gatekeeper"]. [obs] (use [Grid_obs.Obs.noop] to disable) spans the
    submission path and counts authentications, account mappings, and
    submissions. *)

val new_challenge : t -> string
(** Mint a single-use authentication challenge; the submitting credential
    must be bound to it. *)

val authenticate :
  t -> Grid_gsi.Credential.t -> (Grid_gsi.Authn.context, Grid_gsi.Authn.error) result
(** Validate a credential against an outstanding challenge (consuming
    it) and the trust store. Shared by submission and management
    authentication; both paths are counted in [authn_total] and spanned
    as ["gsi.authenticate"]. *)

val handle_submit :
  t ->
  credential:Grid_gsi.Credential.t ->
  rsl:string ->
  (Job_manager.t * Protocol.submit_reply, Protocol.submit_error) result
(** The full Figure 1/2 gatekeeper path: authenticate, (baseline) reject
    the jobtag protocol extension, map to a local account, create and
    start a JMI. *)

val submissions : t -> int
