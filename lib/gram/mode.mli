(** GRAM operating modes: unmodified GT2 vs the paper's extension. *)

type t =
  | Gt2_baseline
  | Extended of {
      authorization : Grid_callout.Callout.Batch.t;
          (** two-lane callout: per-request consultations on the single
              lane, whole management batches on the many lane *)
      advice : (Grid_callout.Callout.query -> Grid_policy.Types.clause option) option;
          (** policy-derived-enforcement hook: the clause an authorized
              decision rested on, for sandbox configuration *)
      backend : string;
          (** PEP implementation behind the callout; the [backend] label
              on authorization metrics *)
    }

val extended :
  ?advice:(Grid_callout.Callout.query -> Grid_policy.Types.clause option) ->
  ?backend:string ->
  Grid_callout.Callout.t ->
  t
(** [backend] defaults to ["custom"]. The plain callout is lifted with
    the derived many lane ({!Grid_callout.Callout.Batch.of_callout}), so
    every existing callout keeps working unchanged. *)

val extended_batch :
  ?advice:(Grid_callout.Callout.query -> Grid_policy.Types.clause option) ->
  ?backend:string ->
  Grid_callout.Callout.Batch.t ->
  t
(** {!extended} for a natively batched callout (e.g.
    {!Grid_callout.File_pep.Compiled.batch}): the many lane answers whole
    management batches in one amortized pass. *)

val is_extended : t -> bool
val to_string : t -> string

val backend_label : t -> string
(** The metrics backend label: ["gt2"] for the baseline, else the
    Extended backend name. *)

val extended_from_config : Grid_callout.Config.t -> Grid_callout.Registry.t -> t
(** Resolve the job-manager authorization callout from configuration; a
    misconfigured callout fails closed at invocation time. *)

val instrument : ?epoch:(unit -> int) -> obs:Grid_obs.Obs.t -> t -> t
(** Wrap the Extended callout with [Grid_callout.Callout.instrument] under
    the mode's backend label; the baseline is returned unchanged. [epoch]
    (typically [File_pep.Compiled.epoch]) stamps every decision event
    with the policy epoch it was made under. *)

val with_cache : cache:Grid_callout.Cache.t -> t -> t
(** Memoize the Extended callout through an authorization decision cache
    ([Grid_callout.Cache.with_cache]), scoped under the mode's backend
    label; the baseline is returned unchanged. Apply before {!instrument}
    so cache hits still count in [authz_decisions_total]. *)
