(** The Job Manager Instance: one per job; parses the request, drives the
    local resource manager, and — in extended mode — enforces policy
    through the authorization callout on startup and on every management
    request. *)

type t

val sim_duration_attribute : string
(** Simulation-only RSL attribute ("simduration", seconds) giving the
    job's compute need; defaults to 60 s when absent. *)

val default_duration : float

val create :
  ?allocation:Grid_accounts.Allocation.enforcement ->
  ?obs:Grid_obs.Obs.t ->
  owner:Grid_gsi.Dn.t ->
  account:string ->
  limits:Grid_accounts.Sandbox.limits ->
  job:Grid_rsl.Job.t ->
  mode:Mode.t ->
  lrm:Grid_lrm.Lrm.t ->
  engine:Grid_sim.Engine.t ->
  audit:Grid_audit.Audit.t ->
  trace:Grid_sim.Trace.t ->
  unit ->
  t
(** [allocation] turns on coarse-grained admission control: a job's
    worst-case cpu-seconds are reserved against the owner's party budget
    at startup and settled against actual usage at termination. [obs]
    spans startup ([jmi.start] with [sandbox.check]/[lrm.submit]
    children and a detached [job.run] span closed at the terminal LRM
    state) and management ([jmi.manage], counted in
    [management_requests_total]); baseline owner-match decisions are
    counted in [authz_decisions_total] under backend ["gt2"]. *)

val restore :
  ?obs:Grid_obs.Obs.t ->
  contact:string ->
  owner:Grid_gsi.Dn.t ->
  account:string ->
  limits:Grid_accounts.Sandbox.limits ->
  job:Grid_rsl.Job.t ->
  mode:Mode.t ->
  lrm:Grid_lrm.Lrm.t ->
  engine:Grid_sim.Engine.t ->
  audit:Grid_audit.Audit.t ->
  trace:Grid_sim.Trace.t ->
  lrm_job:string option ->
  unit ->
  t
(** Rebuild a JMI from its durable creation record (crash recovery): the
    instance keeps its original [contact], re-attaches to the still-running
    LRM job by [lrm_job], and runs no startup authorization or submission
    side effects. *)

val contact : t -> string

(** The local scheduler's job id, once started. *)
val lrm_job_id : t -> string option

val owner : t -> Grid_gsi.Dn.t
val account : t -> string
val limits : t -> Grid_accounts.Sandbox.limits
val job : t -> Grid_rsl.Job.t
val jobtag : t -> string option

val callout_invocations : t -> int
(** How many times the authorization callout ran for this JMI. *)

val start :
  t ->
  credential:Grid_gsi.Credential.t option ->
  (Protocol.submit_reply, Protocol.submit_error) result
(** Authorize (extended mode), sandbox-check, and submit to the LRM. *)

val status : t -> (Protocol.job_status, Protocol.management_error) result

val manage :
  t ->
  requester:Grid_gsi.Dn.t ->
  ?credential:Grid_gsi.Credential.t ->
  Protocol.management_action ->
  (Protocol.management_reply, Protocol.management_error) result
(** Authorize the requester (owner-only in baseline mode; callout in
    extended mode), then perform the action against the LRM. *)

val manage_many :
  (t * Grid_gsi.Dn.t * Grid_gsi.Credential.t option * Protocol.management_action) array ->
  (Protocol.management_reply, Protocol.management_error) result array
(** Batched {!manage} across (possibly many) JMIs: items whose extended
    modes share one batch callout are authorized in a single
    [evaluate_many] pass, baseline items keep the inline initiator
    check, and every item is audited, performed, and counted exactly as
    the single-shot path would. Results come back in request order. *)
