(** The GRAM client: submission and (possibly third-party) job
    management on behalf of a grid identity.

    Management requests (status/cancel/signal) are idempotent at the
    resource and may be retried under a deadline via
    {!manage_with_retry}; submission is never retried automatically. *)

type t

val create :
  ?retry:Grid_util.Retry.policy ->
  ?attempt_timeout:float ->
  ?seed:int ->
  identity:Grid_gsi.Identity.t ->
  resource:Resource.t ->
  unit ->
  t
(** [retry] (default {!Grid_util.Retry.default}) governs
    {!manage_with_retry}; [attempt_timeout] (default 0.25s) bounds each
    individual attempt; [seed] feeds the backoff-jitter stream. *)

val identity : t -> Grid_gsi.Identity.t
val subject : t -> Grid_gsi.Dn.t

val credential_for : t -> Grid_gsi.Credential.t
(** Fresh credential bound to a challenge newly minted by the resource. *)

val submit :
  ?timeout:float ->
  t ->
  rsl:string ->
  reply:((Protocol.submit_reply, Protocol.submit_error) result -> unit) ->
  unit

val manage :
  ?timeout:float ->
  t ->
  contact:string ->
  Protocol.management_action ->
  reply:((Protocol.management_reply, Protocol.management_error) result -> unit) ->
  unit

val manage_with_retry :
  ?policy:Grid_util.Retry.policy ->
  ?deadline:float ->
  t ->
  contact:string ->
  Protocol.management_action ->
  reply:((Protocol.management_reply, Protocol.management_error) result -> unit) ->
  unit
(** Retry the (idempotent) management request on [Request_timed_out]
    with exponential backoff, until a definite answer arrives, the
    policy's attempts run out, or the [deadline] (seconds from now)
    would be overshot. A deadline of 0 fails immediately without
    sending anything. Retries and exhaustion are counted under
    [client_retries_total]/[client_retry_exhausted_total]. *)

val submit_sync :
  ?timeout:float -> t -> rsl:string -> (Protocol.submit_reply, Protocol.submit_error) result
(** Drive the simulation until the reply arrives. *)

val manage_sync :
  ?timeout:float ->
  t ->
  contact:string ->
  Protocol.management_action ->
  (Protocol.management_reply, Protocol.management_error) result

val manage_with_retry_sync :
  ?policy:Grid_util.Retry.policy ->
  ?deadline:float ->
  t ->
  contact:string ->
  Protocol.management_action ->
  (Protocol.management_reply, Protocol.management_error) result

val watch :
  t ->
  contact:string ->
  on_state_change:(Protocol.job_state -> unit) ->
  (unit, Protocol.management_error) result
(** Register a GT2-style callback contact: subsequent state transitions
    of the job are delivered asynchronously. *)

val status_sync : t -> contact:string -> (Protocol.job_status, Protocol.management_error) result
