(* Codec for the job manager's durable records.

   Payloads are Grid_store.Codec field records (kind=... plus event
   fields), so the journal stays greppable and `gridctl journal show`
   can print them verbatim. Snapshot entries reuse the Job_created
   payload unchanged — one codec covers both files. *)

type job_entry = {
  contact : string;
  owner : Grid_gsi.Dn.t;
  account : string;
  jobtag : string option;
  rsl : string;
  rsl_fingerprint : string;
  policy_epoch : int option;
  limits : Grid_accounts.Sandbox.limits;
  lrm_job : string option;
  created_at : Grid_sim.Clock.time;
}

type event =
  | Job_created of job_entry
  | Job_state of { contact : string; state : string; at : Grid_sim.Clock.time }
  | Management of {
      contact : string;
      requester : Grid_gsi.Dn.t;
      action : string;
      outcome : string;
      at : Grid_sim.Clock.time;
    }

let fingerprint job = Grid_crypto.Sha256.digest_hex (Grid_rsl.Job.to_string job)

(* --- Encoding ----------------------------------------------------------- *)

let float_field f = Printf.sprintf "%.17g" f

let opt_field key = function None -> [] | Some v -> [ (key, v) ]

let limits_fields (l : Grid_accounts.Sandbox.limits) =
  opt_field "max_cpus" (Option.map string_of_int l.Grid_accounts.Sandbox.max_cpus)
  @ opt_field "max_memory_mb" (Option.map string_of_int l.Grid_accounts.Sandbox.max_memory_mb)
  @ opt_field "max_walltime" (Option.map float_field l.Grid_accounts.Sandbox.max_walltime)
  @ [ ("dirs", Grid_store.Codec.encode_list l.Grid_accounts.Sandbox.allowed_directories);
      ("exes", Grid_store.Codec.encode_list l.Grid_accounts.Sandbox.allowed_executables) ]

let encode = function
  | Job_created e ->
    Grid_store.Codec.encode
      ([ ("kind", "job-created");
         ("contact", e.contact);
         ("owner", Grid_gsi.Dn.to_string e.owner);
         ("account", e.account) ]
      @ opt_field "jobtag" e.jobtag
      @ [ ("rsl", e.rsl); ("rsl_sha256", e.rsl_fingerprint) ]
      @ opt_field "policy_epoch" (Option.map string_of_int e.policy_epoch)
      @ limits_fields e.limits
      @ opt_field "lrm_job" e.lrm_job
      @ [ ("at", float_field e.created_at) ])
  | Job_state { contact; state; at } ->
    Grid_store.Codec.encode
      [ ("kind", "job-state"); ("contact", contact); ("state", state);
        ("at", float_field at) ]
  | Management { contact; requester; action; outcome; at } ->
    Grid_store.Codec.encode
      [ ("kind", "management");
        ("contact", contact);
        ("requester", Grid_gsi.Dn.to_string requester);
        ("action", action);
        ("outcome", outcome);
        ("at", float_field at) ]

(* --- Decoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let require = Grid_store.Codec.require
let field = Grid_store.Codec.field

let missing key = Error (Printf.sprintf "missing field %s" key)

let parse_dn s =
  match Grid_gsi.Dn.parse s with
  | dn -> Ok dn
  | exception Grid_gsi.Dn.Parse_error m -> Error (Printf.sprintf "bad DN %S: %s" s m)

let parse_float key s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %s is not a float: %S" key s)

let parse_int_opt key fields =
  match field fields key with
  | None -> Ok None
  | Some s -> begin
    match int_of_string_opt s with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "field %s is not an int: %S" key s)
  end

let parse_limits fields =
  let* max_cpus = parse_int_opt "max_cpus" fields in
  let* max_memory_mb = parse_int_opt "max_memory_mb" fields in
  let* max_walltime =
    match field fields "max_walltime" with
    | None -> Ok None
    | Some s -> Result.map Option.some (parse_float "max_walltime" s)
  in
  let list_of key =
    match field fields key with None -> [] | Some s -> Grid_store.Codec.decode_list s
  in
  Ok
    { Grid_accounts.Sandbox.max_cpus;
      max_memory_mb;
      max_walltime;
      allowed_directories = list_of "dirs";
      allowed_executables = list_of "exes" }

let decode payload =
  let fields = Grid_store.Codec.decode payload in
  let* kind = require fields "kind" in
  let* contact = require fields "contact" in
  let at key =
    match field fields key with None -> missing key | Some s -> parse_float key s
  in
  match kind with
  | "job-created" ->
    let* owner = Result.bind (require fields "owner") parse_dn in
    let* account = require fields "account" in
    let* rsl = require fields "rsl" in
    let* rsl_fingerprint = require fields "rsl_sha256" in
    let* policy_epoch = parse_int_opt "policy_epoch" fields in
    let* limits = parse_limits fields in
    let* created_at = at "at" in
    Ok
      (Job_created
         { contact;
           owner;
           account;
           jobtag = field fields "jobtag";
           rsl;
           rsl_fingerprint;
           policy_epoch;
           limits;
           lrm_job = field fields "lrm_job";
           created_at })
  | "job-state" ->
    let* state = require fields "state" in
    let* at = at "at" in
    Ok (Job_state { contact; state; at })
  | "management" ->
    let* requester = Result.bind (require fields "requester") parse_dn in
    let* action = require fields "action" in
    let* outcome = require fields "outcome" in
    let* at = at "at" in
    Ok (Management { contact; requester; action; outcome; at })
  | other -> Error (Printf.sprintf "unknown record kind %S" other)

let pp_event ppf = function
  | Job_created e ->
    Fmt.pf ppf "%8.3fs created  %s owner=%s account=%s%s epoch=%s lrm=%s" e.created_at
      e.contact (Grid_gsi.Dn.to_string e.owner) e.account
      (match e.jobtag with Some t -> " jobtag=" ^ t | None -> "")
      (match e.policy_epoch with Some n -> string_of_int n | None -> "-")
      (Option.value e.lrm_job ~default:"-")
  | Job_state { contact; state; at } -> Fmt.pf ppf "%8.3fs state    %s -> %s" at contact state
  | Management { contact; requester; action; outcome; at } ->
    Fmt.pf ppf "%8.3fs manage   %s %s by %s: %s" at contact action
      (Grid_gsi.Dn.to_string requester) outcome

(* --- Rebuild ------------------------------------------------------------ *)

type rebuild = {
  entries : job_entry list;
  events : int;
  decode_failures : int;
}

let rebuild ~snapshot ~journal =
  let table : (string, job_entry) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let events = ref 0 in
  let failures = ref 0 in
  let absorb payload =
    match decode payload with
    | Error _ -> incr failures
    | Ok event ->
      incr events;
      (match event with
      | Job_created e ->
        if not (Hashtbl.mem table e.contact) then order := e.contact :: !order;
        Hashtbl.replace table e.contact e
      | Job_state _ | Management _ ->
        (* Only creation records carry state the JMI must be rebuilt
           from; states and management outcomes are history (the LRM
           survives a job-manager crash and remains authoritative). *)
        ())
  in
  List.iter absorb snapshot;
  List.iter absorb journal;
  let entries = List.rev_map (fun contact -> Hashtbl.find table contact) !order in
  { entries; events = !events; decode_failures = !failures }
