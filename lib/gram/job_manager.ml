(* The Job Manager Instance (JMI).

   One JMI exists per job (Figure 1). It parses the user's request,
   interfaces with the local job control system to initiate the job, then
   monitors it and services management requests. In GT2 baseline mode the
   JMI does no authorization on startup (the Gatekeeper already did) and
   authorizes management with the static rule "requester = initiator"; in
   extended mode it calls the authorization callout before creating the
   job manager request and before every cancel/status/signal (Section
   5.2).

   The JMI runs under the job owner's local credential; [account] is that
   credential. The simulator's LRM enforces per-account limits through the
   sandbox profile attached at mapping time. *)

type t = {
  contact : string;                         (* the GRAM job contact *)
  owner : Grid_gsi.Dn.t;                    (* grid identity of the initiator *)
  account : string;                         (* local credential the JMI runs under *)
  limits : Grid_accounts.Sandbox.limits;
  job : Grid_rsl.Job.t;
  jobtag : string option;
  mode : Mode.t;
  allocation : Grid_accounts.Allocation.enforcement option;
  lrm : Grid_lrm.Lrm.t;
  engine : Grid_sim.Engine.t;
  audit : Grid_audit.Audit.t;
  trace : Grid_sim.Trace.t;
  obs : Grid_obs.Obs.t;
  mutable lrm_job : string option;          (* local scheduler job id *)
  mutable callout_invocations : int;
}

(* Simulation-only RSL attribute giving the job's compute need in seconds
   (real jobs just run; the simulator must know when they finish). *)
let sim_duration_attribute = "simduration"
let default_duration = 60.0

let duration_of_job (job : Grid_rsl.Job.t) =
  let clause = Grid_rsl.Job.clause job in
  match
    List.find_opt
      (fun (r : Grid_rsl.Ast.relation) ->
        r.attribute = sim_duration_attribute && r.op = Grid_rsl.Ast.Eq)
      clause
  with
  | Some { values = [ Grid_rsl.Ast.Literal s ]; _ } -> begin
    match float_of_string_opt s with Some d when d >= 0.0 -> d | Some _ | None -> default_duration
  end
  | Some _ | None -> default_duration

let create ?allocation ?(obs = Grid_obs.Obs.noop) ~owner ~account ~limits ~job ~mode ~lrm
    ~engine ~audit ~trace () =
  { contact = Grid_util.Ids.contact ();
    owner;
    account;
    limits;
    job;
    jobtag = job.Grid_rsl.Job.jobtag;
    mode;
    allocation;
    lrm;
    engine;
    audit;
    trace;
    obs;
    lrm_job = None;
    callout_invocations = 0 }

(* Rebuild a JMI from its journalled creation record after a job-manager
   crash. No startup side effects run: the LRM (which survives the
   crash) already holds the job, so the restored instance just re-attaches
   to it by the recorded scheduler id and resumes serving management
   requests under the same contact. *)
let restore ?(obs = Grid_obs.Obs.noop) ~contact ~owner ~account ~limits ~job ~mode ~lrm
    ~engine ~audit ~trace ~lrm_job () =
  { contact;
    owner;
    account;
    limits;
    job;
    jobtag = job.Grid_rsl.Job.jobtag;
    mode;
    allocation = None;
    lrm;
    engine;
    audit;
    trace;
    obs;
    lrm_job;
    callout_invocations = 0 }

let contact t = t.contact
let lrm_job_id t = t.lrm_job
let owner t = t.owner
let account t = t.account
let limits t = t.limits
let job t = t.job
let jobtag t = t.jobtag
let callout_invocations t = t.callout_invocations

let now t = Grid_sim.Engine.now t.engine

let record t ~target label =
  Grid_sim.Trace.record t.trace ~at:(now t) ~source:("jmi:" ^ t.contact) ~target label

let authorize t (query : Grid_callout.Callout.query) =
  match t.mode with
  | Mode.Gt2_baseline ->
    (* Baseline management rule: the Grid identity of the requester must
       match the Grid identity of the job initiator. Start requests reach
       the JMI pre-authorized by the Gatekeeper (and are not counted as
       authorization decisions — no check happens here). *)
    if query.Grid_callout.Callout.action = Grid_policy.Types.Action.Start then Ok ()
    else begin
      let decision =
        if Grid_gsi.Dn.equal query.Grid_callout.Callout.requester t.owner then Ok ()
        else
          Error
            (Grid_callout.Callout.Denied "GT2: only the job initiator may manage this job")
      in
      if Grid_obs.Obs.enabled t.obs then
        Grid_obs.Obs.incr t.obs
          ~labels:
            [ ("backend", "gt2");
              ("action", Grid_policy.Types.Action.to_string query.Grid_callout.Callout.action);
              ("outcome", Grid_callout.Callout.outcome_label decision) ]
          "authz_decisions_total";
      decision
    end
  | Mode.Extended { authorization; _ } ->
    (* The Extended callout arrives already wrapped by [Mode.instrument],
       so consultations are spanned/counted there under the mode's
       backend label. *)
    t.callout_invocations <- t.callout_invocations + 1;
    record t ~target:"pep" "authorization callout";
    Grid_callout.Callout.Batch.check authorization query

(* --- Job startup ------------------------------------------------------- *)

let audit_authz t ~requester ~job_id ~action outcome =
  Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Authorization
    ~subject:requester ~job_id
    ?corr_id:(Grid_obs.Obs.correlation t.obs)
    ~outcome
    (Printf.sprintf "action=%s mode=%s" action (Mode.to_string t.mode))

let start_inner t ~(credential : Grid_gsi.Credential.t option) :
    (Protocol.submit_reply, Protocol.submit_error) result =
  let query =
    { Grid_callout.Callout.requester = t.owner;
      requester_credential = credential;
      job_owner = None;
      action = Grid_policy.Types.Action.Start;
      job_id = Some t.contact;
      rsl = Some (Grid_rsl.Job.clause t.job);
      jobtag = t.jobtag }
  in
  match authorize t query with
  | Error e ->
    audit_authz t ~requester:t.owner ~job_id:t.contact ~action:"start"
      (Grid_audit.Audit.Failure (Grid_callout.Callout.error_to_string e));
    Error (Protocol.Authorization_failed (Protocol.authz_failure_of_callout e))
  | Ok () ->
    audit_authz t ~requester:t.owner ~job_id:t.contact ~action:"start"
      Grid_audit.Audit.Success;
    (* Policy-derived enforcement (the Section 7 "GT3" direction): when
       the PEP can say which clause the permit rested on, the sandbox is
       tightened to that clause's envelope — the continuous-enforcement
       half the gateway model lacks (Section 6.1). *)
    let effective_limits =
      match t.mode with
      | Mode.Extended { advice = Some advise; _ } -> begin
        match advise query with
        | Some clause ->
          let derived = Grid_accounts.Sandbox.of_policy_clause clause in
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Account_mapping
            ~subject:t.owner ~job_id:t.contact ~outcome:Grid_audit.Audit.Success
            (Printf.sprintf "sandbox derived from policy clause %s"
               (Grid_policy.Types.clause_to_string clause));
          Grid_accounts.Sandbox.intersect t.limits derived
        | None -> t.limits
      end
      | Mode.Extended { advice = None; _ } | Mode.Gt2_baseline -> t.limits
    in
    let violations =
      Grid_obs.Obs.with_span t.obs "sandbox.check" (fun _ ->
          Grid_accounts.Sandbox.check effective_limits t.job)
    in
    if violations <> [] then begin
      let messages = List.map Grid_accounts.Sandbox.violation_to_string violations in
      Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Job_submission
        ~subject:t.owner ~job_id:t.contact
        ~outcome:(Grid_audit.Audit.Failure (String.concat "; " messages))
        "sandbox refused job";
      Error (Protocol.Sandbox_violation messages)
    end
    else begin
      let walltime_limit =
        (* The tighter of the user's request and the sandbox envelope:
           the policy-derived cap is enforced even when the request
           omits maxwalltime. *)
        match
          ( Option.map (fun minutes -> minutes *. 60.0) t.job.Grid_rsl.Job.max_wall_time,
            effective_limits.Grid_accounts.Sandbox.max_walltime )
        with
        | None, cap -> cap
        | requested, None -> requested
        | Some r, Some cap -> Some (Float.min r cap)
      in
      let spec =
        { Grid_lrm.Lrm.account = t.account;
          cpus = t.job.Grid_rsl.Job.count;
          duration = duration_of_job t.job;
          walltime_limit;
          queue = t.job.Grid_rsl.Job.queue }
      in
      (* Coarse-grained allocation (Section 2): reserve the worst-case
         cpu-seconds before submission; settle against actual walltime
         usage when the job reaches a terminal state. *)
      let reservation =
        match t.allocation with
        | None -> Ok None
        | Some { Grid_accounts.Allocation.bank; party_of } -> begin
          match party_of t.owner with
          | None ->
            Error
              (Printf.sprintf "no resource allocation covers %s"
                 (Grid_gsi.Dn.to_string t.owner))
          | Some party ->
            let worst_case_seconds =
              match spec.Grid_lrm.Lrm.walltime_limit with
              | Some w -> w
              | None -> spec.Grid_lrm.Lrm.duration
            in
            let amount = float_of_int spec.Grid_lrm.Lrm.cpus *. worst_case_seconds in
            (match Grid_accounts.Allocation.reserve bank ~party ~amount with
            | Ok r -> Ok (Some r)
            | Error e -> Error (Grid_accounts.Allocation.error_to_string e))
        end
      in
      match reservation with
      | Error message ->
        Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Job_submission
          ~subject:t.owner ~job_id:t.contact
          ~outcome:(Grid_audit.Audit.Failure message) "allocation refused job";
        Error (Protocol.Allocation_refused message)
      | Ok reservation -> begin
        record t ~target:"lrm" "submit job";
        match
          Grid_obs.Obs.with_span t.obs "lrm.submit" (fun _ ->
              Grid_lrm.Lrm.submit t.lrm spec)
        with
        | Error e ->
          Option.iter Grid_accounts.Allocation.cancel reservation;
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Job_submission
            ~subject:t.owner ~job_id:t.contact
            ~outcome:(Grid_audit.Audit.Failure (Grid_lrm.Lrm.error_to_string e))
            "local resource manager refused job";
          Error (Protocol.Resource_unavailable (Grid_lrm.Lrm.error_to_string e))
        | Ok lrm_id ->
          t.lrm_job <- Some lrm_id;
          (* The job's lifetime outlives this call: a detached span from
             submission to the terminal LRM state, closed from the state
             change listener. *)
          if Grid_obs.Obs.enabled t.obs then begin
            let run_span =
              Grid_obs.Obs.start_span t.obs
                ~attrs:[ ("lrm_job", lrm_id); ("account", t.account) ]
                "job.run"
            in
            Grid_lrm.Lrm.on_event t.lrm
              (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
                if String.equal job.Grid_lrm.Lrm.id lrm_id then begin
                  match job.Grid_lrm.Lrm.state with
                  | Grid_lrm.Lrm.Completed | Grid_lrm.Lrm.Cancelled
                  | Grid_lrm.Lrm.Killed _ ->
                    Grid_obs.Span.set_attr run_span "state"
                      (Grid_lrm.Lrm.state_to_string job.Grid_lrm.Lrm.state);
                    Grid_obs.Obs.finish_span t.obs run_span
                  | Grid_lrm.Lrm.Pending | Grid_lrm.Lrm.Running
                  | Grid_lrm.Lrm.Suspended -> ()
                end)
          end;
          (match reservation with
          | None -> ()
          | Some reservation ->
            let cpus = float_of_int spec.Grid_lrm.Lrm.cpus in
            Grid_lrm.Lrm.on_event t.lrm
              (fun (Grid_lrm.Lrm.State_changed { job; _ }) ->
                if
                  String.equal job.Grid_lrm.Lrm.id lrm_id
                  &&
                  match job.Grid_lrm.Lrm.state with
                  | Grid_lrm.Lrm.Completed | Grid_lrm.Lrm.Cancelled
                  | Grid_lrm.Lrm.Killed _ -> true
                  | Grid_lrm.Lrm.Pending | Grid_lrm.Lrm.Running
                  | Grid_lrm.Lrm.Suspended -> false
                then
                  Grid_accounts.Allocation.settle reservation
                    ~actual:(cpus *. job.Grid_lrm.Lrm.walltime_used)));
          Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Job_submission
            ~subject:t.owner ~job_id:t.contact ~outcome:Grid_audit.Audit.Success
            (Printf.sprintf "lrm job %s under account %s" lrm_id t.account);
          Ok { Protocol.job_contact = t.contact; submitted_as = t.account }
      end
    end

let start t ~credential =
  if not (Grid_obs.Obs.enabled t.obs) then start_inner t ~credential
  else
    Grid_obs.Obs.with_span t.obs
      ~attrs:[ ("contact", t.contact) ]
      "jmi.start"
      (fun span ->
        let result = start_inner t ~credential in
        let outcome = match result with Ok _ -> "ok" | Error _ -> "refused" in
        Grid_obs.Span.set_attr span "outcome" outcome;
        Grid_obs.Obs.emit t.obs ~layer:"jmi" "jmi.start"
          [ ("contact", t.contact); ("outcome", outcome) ];
        result)

(* --- Management --------------------------------------------------------- *)

let status t : (Protocol.job_status, Protocol.management_error) result =
  match t.lrm_job with
  | None -> Error (Protocol.Invalid_request "job was never started")
  | Some lrm_id -> begin
    match Grid_lrm.Lrm.query t.lrm lrm_id with
    | Error e -> Error (Protocol.Invalid_request (Grid_lrm.Lrm.error_to_string e))
    | Ok st ->
      Ok
        { Protocol.contact = t.contact;
          owner = t.owner;
          state = Protocol.job_state_of_lrm st.Grid_lrm.Lrm.job_state;
          jobtag = t.jobtag;
          account = t.account;
          cpus = st.Grid_lrm.Lrm.job_cpus }
  end

let perform t (action : Protocol.management_action) :
    (Protocol.management_reply, Protocol.management_error) result =
  match t.lrm_job with
  | None -> Error (Protocol.Invalid_request "job was never started")
  | Some lrm_id -> begin
    let lift = function
      | Ok _ -> Ok Protocol.Ack
      | Error e -> Error (Protocol.Invalid_request (Grid_lrm.Lrm.error_to_string e))
    in
    let spanned name op =
      Grid_obs.Obs.with_span t.obs name (fun _ -> lift (op ()))
    in
    match action with
    | Protocol.Cancel -> begin
      (* Cancel is idempotent: a job already cancelled acknowledges again
         rather than failing, so a retried (or duplicate-delivered) cancel
         whose first reply was lost still converges on Ack. *)
      match Grid_lrm.Lrm.query t.lrm lrm_id with
      | Ok { Grid_lrm.Lrm.job_state = Grid_lrm.Lrm.Cancelled; _ } -> Ok Protocol.Ack
      | Ok _ | Error _ ->
        record t ~target:"lrm" "cancel job";
        spanned "lrm.cancel" (fun () -> Grid_lrm.Lrm.cancel t.lrm lrm_id)
    end
    | Protocol.Status -> begin
      match status t with
      | Ok st -> Ok (Protocol.Job_status st)
      | Error _ as e -> e
    end
    | Protocol.Signal Protocol.Suspend ->
      record t ~target:"lrm" "suspend job";
      spanned "lrm.suspend" (fun () -> Grid_lrm.Lrm.suspend t.lrm lrm_id)
    | Protocol.Signal Protocol.Resume ->
      record t ~target:"lrm" "resume job";
      spanned "lrm.resume" (fun () -> Grid_lrm.Lrm.resume t.lrm lrm_id)
    | Protocol.Signal (Protocol.Set_priority p) ->
      record t ~target:"lrm" "set priority";
      spanned "lrm.set_priority" (fun () -> Grid_lrm.Lrm.set_priority t.lrm lrm_id p)
  end

let management_query t ~requester ~(credential : Grid_gsi.Credential.t option)
    (action : Protocol.management_action) : Grid_callout.Callout.query =
  { Grid_callout.Callout.requester;
    requester_credential = credential;
    job_owner = Some t.owner;
    action = Protocol.to_policy_action action;
    job_id = Some t.contact;
    rsl = None;
    jobtag = t.jobtag }

(* The post-authorization half of a management request: audit the
   decision and, when permitted, perform the action. Shared by the
   single-shot path and the batched path, so both audit and act
   identically. *)
let manage_decided t ~requester (action : Protocol.management_action)
    (decision : Grid_callout.Callout.decision) :
    (Protocol.management_reply, Protocol.management_error) result =
  let action_name = Protocol.management_action_to_string action in
  match decision with
  | Error e ->
    audit_authz t ~requester ~job_id:t.contact ~action:action_name
      (Grid_audit.Audit.Failure (Grid_callout.Callout.error_to_string e));
    Error (Protocol.Not_authorized (Protocol.authz_failure_of_callout e))
  | Ok () ->
    audit_authz t ~requester ~job_id:t.contact ~action:action_name Grid_audit.Audit.Success;
    Grid_audit.Audit.log t.audit ~at:(now t) ~kind:Grid_audit.Audit.Job_management
      ~subject:requester ~job_id:t.contact ~outcome:Grid_audit.Audit.Success action_name;
    perform t action

let manage_inner t ~requester ?(credential : Grid_gsi.Credential.t option)
    (action : Protocol.management_action) :
    (Protocol.management_reply, Protocol.management_error) result =
  let query = management_query t ~requester ~credential action in
  manage_decided t ~requester action (authorize t query)

(* Span/counter/event wrapper around one management request; shared by
   [manage] and the batched path so every request lands in
   [management_requests_total] and the ["jmi.manage"] event stream the
   same way, batched or not. *)
let observed_manage t (action : Protocol.management_action) run =
  if not (Grid_obs.Obs.enabled t.obs) then run ()
  else begin
    let action_name = Protocol.management_action_to_string action in
    Grid_obs.Obs.with_span t.obs
      ~attrs:[ ("action", action_name); ("contact", t.contact) ]
      "jmi.manage"
      (fun span ->
        let result = run () in
        let outcome =
          match result with
          | Ok _ -> "ok"
          | Error (Protocol.Not_authorized _) -> "denied"
          | Error _ -> "error"
        in
        Grid_obs.Span.set_attr span "outcome" outcome;
        Grid_obs.Obs.incr t.obs
          ~labels:[ ("action", action_name); ("outcome", outcome) ]
          "management_requests_total";
        Grid_obs.Obs.emit t.obs ~layer:"jmi" "jmi.manage"
          [ ("contact", t.contact); ("action", action_name); ("outcome", outcome) ];
        result)
  end

let manage t ~requester ?credential action =
  observed_manage t action (fun () -> manage_inner t ~requester ?credential action)

(* --- Batched management ------------------------------------------------ *)

(* Authorize-and-perform a whole batch of management requests, possibly
   spanning many JMIs. Authorization goes through the Extended mode's
   many lane: items sharing one (physically equal) batch callout — the
   common case, since a resource wires one mode into every JMI — are
   authorized in a single [evaluate_many] call; baseline items keep the
   inline initiator check. Every item is then audited/performed through
   the same [manage_decided]/[observed_manage] pair as the single-shot
   path, and the result array preserves request order. *)
let manage_many
    (items :
      (t * Grid_gsi.Dn.t * Grid_gsi.Credential.t option * Protocol.management_action)
      array) : (Protocol.management_reply, Protocol.management_error) result array =
  let n = Array.length items in
  let decisions = Array.make n Grid_callout.Callout.permitted in
  let groups : (Grid_callout.Callout.Batch.t * int list ref) list ref = ref [] in
  for i = 0 to n - 1 do
    let t, requester, credential, action = items.(i) in
    match t.mode with
    | Mode.Gt2_baseline ->
      decisions.(i) <- authorize t (management_query t ~requester ~credential action)
    | Mode.Extended { authorization; _ } -> begin
      t.callout_invocations <- t.callout_invocations + 1;
      record t ~target:"pep" "authorization callout";
      match List.find_opt (fun (b, _) -> b == authorization) !groups with
      | Some (_, ids) -> ids := i :: !ids
      | None -> groups := (authorization, ref [ i ]) :: !groups
    end
  done;
  List.iter
    (fun (authorization, ids) ->
      let idx = Array.of_list (List.rev !ids) in
      let queries =
        Array.map
          (fun i ->
            let t, requester, credential, action = items.(i) in
            management_query t ~requester ~credential action)
          idx
      in
      let answers = Grid_callout.Callout.Batch.evaluate_many authorization queries in
      Array.iteri (fun k i -> decisions.(i) <- answers.(k)) idx)
    !groups;
  Array.mapi
    (fun i (t, requester, _credential, action) ->
      observed_manage t action (fun () -> manage_decided t ~requester action decisions.(i)))
    items
