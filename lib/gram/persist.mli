(** Durable representation of the Job Manager's authorization-relevant
    state (paper Section 4.2: a restarted job manager must still be able
    to authorize management of its jobs).

    Every lifecycle event that a management decision can depend on is
    journalled through {!Grid_store.Store}: job creation (with the
    jobowner DN, jobtag, RSL fingerprint, sandbox limits and the policy
    epoch in force), terminal state transitions, and the outcome of each
    cancel/signal. Snapshot records reuse the [Job_created] payload, so
    one codec covers both files. *)

type job_entry = {
  contact : string;
  owner : Grid_gsi.Dn.t;
  account : string;
  jobtag : string option;
  rsl : string;  (** canonical RSL text; reparsed on recovery *)
  rsl_fingerprint : string;  (** SHA-256 (hex) of the canonical RSL *)
  policy_epoch : int option;  (** compiled-policy epoch at admission *)
  limits : Grid_accounts.Sandbox.limits;
  lrm_job : string option;
  created_at : Grid_sim.Clock.time;
}

type event =
  | Job_created of job_entry
  | Job_state of { contact : string; state : string; at : Grid_sim.Clock.time }
  | Management of {
      contact : string;
      requester : Grid_gsi.Dn.t;
      action : string;
      outcome : string;  (** ["ok"] / ["denied"] / ["error"] *)
      at : Grid_sim.Clock.time;
    }

val fingerprint : Grid_rsl.Job.t -> string
(** SHA-256 hex of the job's canonical RSL rendering — binds the journal
    entry to the exact request that was authorized. *)

val encode : event -> string
val decode : string -> (event, string) result

val pp_event : event Fmt.t
(** One-line human rendering for [gridctl journal show]. *)

type rebuild = {
  entries : job_entry list;  (** creation order, deduplicated by contact *)
  events : int;  (** records decoded (snapshot + journal) *)
  decode_failures : int;
}

val rebuild : snapshot:string list -> journal:string list -> rebuild
(** Fold snapshot entries then journal events into the job table.
    Replay is idempotent: a [Job_created] for an already-known contact
    replaces the entry in place (covering the snapshot-rename-before-
    journal-truncate crash window, where pre-snapshot events are seen
    twice). Undecodable records are counted, not fatal. *)
