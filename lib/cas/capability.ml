(* CAS capability credentials.

   The Community Authorization Service implements the *push* model: the
   user first asks the CAS for a credential embedding the subset of
   community policy that applies to them, then presents it with requests;
   the resource's PEP verifies the CAS signature and evaluates the carried
   policy without contacting the VO. (Contrast the flat-file and Akenti
   backends, where the resource pulls policy locally.) *)

type t = {
  holder : Grid_gsi.Dn.t;       (* who may wield this capability *)
  vo : string;                  (* issuing community *)
  policy_text : string;         (* the policy subset, concrete syntax *)
  issued_at : Grid_sim.Clock.time;
  not_after : Grid_sim.Clock.time;
  signature : string;           (* by the CAS server's key *)
}

(* Length-prefixed ([Grid_util.Wire]) to-be-signed bytes: a separator
   join is not injective once a field can contain the separator, and
   both the policy text and (in principle) DN values are
   attacker-influenced. Timestamps use the lossless hex-float form so
   [decode (encode t)] verifies against the same bytes [make] signed. *)
let signing_bytes ~holder ~vo ~policy_text ~issued_at ~not_after =
  Grid_util.Wire.encode
    [ "cas-capability";
      Grid_gsi.Dn.to_string holder;
      vo;
      policy_text;
      Printf.sprintf "%h" issued_at;
      Printf.sprintf "%h" not_after ]

let make ~holder ~vo ~policy_text ~issued_at ~not_after ~signing_key =
  let body = signing_bytes ~holder ~vo ~policy_text ~issued_at ~not_after in
  { holder; vo; policy_text; issued_at; not_after;
    signature = Grid_crypto.Keypair.sign signing_key body }

type verify_error =
  | Bad_signature
  | Expired
  | Holder_mismatch of { expected : Grid_gsi.Dn.t; actual : Grid_gsi.Dn.t }

let verify_error_to_string = function
  | Bad_signature -> "capability signature invalid"
  | Expired -> "capability expired"
  | Holder_mismatch { expected; actual } ->
    Printf.sprintf "capability held by %s presented by %s"
      (Grid_gsi.Dn.to_string expected) (Grid_gsi.Dn.to_string actual)

let verify t ~cas_key ~presenter ~now =
  let body =
    signing_bytes ~holder:t.holder ~vo:t.vo ~policy_text:t.policy_text
      ~issued_at:t.issued_at ~not_after:t.not_after
  in
  if not (Grid_crypto.Keypair.verify cas_key ~signature:t.signature body) then
    Error Bad_signature
  else if not (t.issued_at <= now && now <= t.not_after) then Error Expired
  else if not (Grid_gsi.Dn.equal t.holder presenter) then
    Error (Holder_mismatch { expected = t.holder; actual = presenter })
  else Ok ()

(* --- Wire encoding (for embedding in a proxy extension) ------------- *)

let extension_oid = "cas-capability"

(* The wire form is the signing preimage plus the detached signature —
   one length-prefixed part list, so a policy text or VO name carrying
   newlines (or any other byte) round-trips unchanged. *)
let encode t =
  Grid_util.Wire.encode
    [ "cas-capability";
      Grid_gsi.Dn.to_string t.holder;
      t.vo;
      t.policy_text;
      Printf.sprintf "%h" t.issued_at;
      Printf.sprintf "%h" t.not_after;
      t.signature ]

let decode s =
  match Grid_util.Wire.decode s with
  | Some [ "cas-capability"; holder; vo; policy_text; issued; expiry; signature ]
    -> begin
    try
      Ok
        { holder = Grid_gsi.Dn.parse holder;
          vo;
          policy_text;
          issued_at = float_of_string issued;
          not_after = float_of_string expiry;
          signature }
    with Grid_gsi.Dn.Parse_error m -> Error ("bad holder DN: " ^ m)
       | Failure _ -> Error "malformed capability encoding"
  end
  | Some _ | None -> Error "malformed capability encoding"

let to_extension t =
  { Grid_gsi.Cert.oid = extension_oid; critical = false; payload = encode t }

(* Find a capability in a presented credential's certificate chain (the
   leaf proxy carries it in real CAS deployments; we accept it anywhere in
   the chain the holder controls). *)
let find_in_credential (cred : Grid_gsi.Credential.t) =
  List.find_map
    (fun cert ->
      match Grid_gsi.Cert.find_extension cert extension_oid with
      | Some ext -> Some (decode ext.Grid_gsi.Cert.payload)
      | None -> None)
    cred.Grid_gsi.Credential.chain
