(** Resource-side CAS policy evaluation point. *)

type clock = unit -> Grid_sim.Clock.time

val callout :
  ?obs:Grid_obs.Obs.t ->
  cas_key:Grid_crypto.Keypair.public ->
  now:clock ->
  Grid_callout.Callout.t
(** Verify the capability carried in the requester's credential against
    the trusted CAS key, then evaluate its embedded policy. Fails closed
    without a credential or capability. [obs] spans capability
    verification (["cas.verify"], counted in
    [capability_checks_total{outcome}]) and policy evaluation
    (["policy.eval"], source ["cas-capability"]). *)
