(* The CAS policy evaluation point.

   Resource-side: trusts a CAS public key, expects requests to arrive with
   a credential whose chain carries a capability, verifies the capability
   (signature, lifetime, holder binding), then evaluates the carried
   policy against the request. Missing or invalid capabilities deny;
   undecodable ones are authorization-system failures.

   Observability splits the work into its two distinct costs: capability
   verification (crypto + lifetime checks, span "cas.verify", counted in
   capability_checks_total) and policy evaluation of the carried policy
   (via Eval.observed under source "cas-capability", so it lands in the
   same policy_eval_total series as the other backends). *)

type clock = unit -> Grid_sim.Clock.time

type verified =
  | Verified of Capability.t
  | Not_verified of Grid_callout.Callout.error

(* Find-decode-verify, reported as a single check with one outcome label. *)
let check_capability ~cas_key ~now (query : Grid_callout.Callout.query) : verified =
  match query.Grid_callout.Callout.requester_credential with
  | None ->
    Not_verified
      (Grid_callout.Callout.Denied "no credential presented; CAS PEP requires a capability")
  | Some credential -> begin
    match Capability.find_in_credential credential with
    | None ->
      Not_verified (Grid_callout.Callout.Denied "credential carries no CAS capability")
    | Some (Error m) ->
      Not_verified (Grid_callout.Callout.System_error ("cannot decode capability: " ^ m))
    | Some (Ok capability) -> begin
      match
        Capability.verify capability ~cas_key
          ~presenter:query.Grid_callout.Callout.requester ~now:(now ())
      with
      | Error e ->
        Not_verified (Grid_callout.Callout.Denied (Capability.verify_error_to_string e))
      | Ok () -> Verified capability
    end
  end

let check_outcome = function
  | Verified _ -> "verified"
  | Not_verified (Grid_callout.Callout.Denied _) -> "rejected"
  | Not_verified _ -> "undecodable"

let callout ?(obs = Grid_obs.Obs.noop) ~(cas_key : Grid_crypto.Keypair.public)
    ~(now : clock) : Grid_callout.Callout.t =
 fun query ->
  let verified =
    if not (Grid_obs.Obs.enabled obs) then check_capability ~cas_key ~now query
    else begin
      let verified =
        Grid_obs.Obs.with_span obs "cas.verify" (fun span ->
            let verified = check_capability ~cas_key ~now query in
            Grid_obs.Span.set_attr span "outcome" (check_outcome verified);
            verified)
      in
      Grid_obs.Obs.incr obs
        ~labels:[ ("outcome", check_outcome verified) ]
        "capability_checks_total";
      verified
    end
  in
  match verified with
  | Not_verified error -> Error error
  | Verified capability -> begin
    match Grid_policy.Parse.parse_result capability.Capability.policy_text with
    | Error m ->
      Error
        (Grid_callout.Callout.System_error ("capability carries unparseable policy: " ^ m))
    | Ok policy -> begin
      let request = Grid_callout.Callout.to_policy_request query in
      match Grid_policy.Eval.observed ~obs ~source:"cas-capability" policy request with
      | Grid_policy.Eval.Permit -> Ok ()
      | Grid_policy.Eval.Deny reason ->
        Error
          (Grid_callout.Callout.Denied
             (Printf.sprintf "%s (CAS capability from %s)"
                (Grid_policy.Eval.reason_to_string reason)
                capability.Capability.vo))
    end
  end
