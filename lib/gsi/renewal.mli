(** Credential renewal service (MyProxy stand-in): escrowed identities
    from which authorized renewers draw fresh proxies, keeping
    long-running jobs manageable after the submitting proxy expires. *)

type t

type error =
  | No_deposit of Dn.t
  | Renewer_not_authorized of { owner : Dn.t; renewer : Dn.t }
  | Renewer_authentication_failed of string
  | Escrowed_credential_expired of Dn.t

val error_to_string : error -> string

val create : ?obs:Grid_obs.Obs.t -> unit -> t

val deposit :
  t ->
  identity:Identity.t ->
  authorized_renewers:Dn.t list ->
  ?max_proxy_lifetime:Grid_sim.Clock.time ->
  now:Grid_sim.Clock.time ->
  unit ->
  [ `Deposited | `Replaced ]
(** Escrow an identity. Default proxy-lifetime cap: 12 h. A deposit
    under a subject that already holds one replaces it — reported as
    [`Replaced], counted ([renewal_redeposits_total]) and audited
    (["renewal.redeposit"]) because a silent replacement is a renewal
    hijack primitive. *)

val has_deposit : t -> Dn.t -> bool

val renewals : t -> int

val replacements : t -> int
(** Deposits that displaced an existing escrow. *)

val renew :
  t ->
  trust:Ca.Trust_store.store ->
  now:Grid_sim.Clock.time ->
  ?lifetime:Grid_sim.Clock.time ->
  owner:Dn.t ->
  Credential.t ->
  (Identity.t, error) result
(** Authenticate the renewer, check the authorization list (self-renewal
    always allowed), and issue a fresh proxy of the escrowed identity,
    capped at the deposit's lifetime limit. *)
