(* Credential renewal service (a MyProxy stand-in).

   Long-running jobs outlive the short-lived proxies that submitted them;
   grid deployments solved this with an online credential repository: the
   user deposits a longer-lived credential and authorizes specific
   services (a job manager, a portal) to draw fresh proxies from it. The
   server authenticates the renewer, checks the authorization list, and
   issues a new proxy of the escrowed identity. *)

type deposit = {
  identity : Identity.t;                (* the escrowed credential *)
  authorized_renewers : Dn.t list;      (* who may draw proxies *)
  max_proxy_lifetime : Grid_sim.Clock.time;
  deposited_at : Grid_sim.Clock.time;
}

type t = {
  deposits : (string, deposit) Hashtbl.t; (* keyed by owner DN *)
  obs : Grid_obs.Obs.t;
  mutable renewals : int;
  mutable replacements : int;
}

type error =
  | No_deposit of Dn.t
  | Renewer_not_authorized of { owner : Dn.t; renewer : Dn.t }
  | Renewer_authentication_failed of string
  | Escrowed_credential_expired of Dn.t

let error_to_string = function
  | No_deposit dn -> "no credential deposited for " ^ Dn.to_string dn
  | Renewer_not_authorized { owner; renewer } ->
    Printf.sprintf "%s is not authorized to renew for %s" (Dn.to_string renewer)
      (Dn.to_string owner)
  | Renewer_authentication_failed m -> "renewer authentication failed: " ^ m
  | Escrowed_credential_expired dn ->
    "escrowed credential expired for " ^ Dn.to_string dn

let create ?(obs = Grid_obs.Obs.noop) () =
  { deposits = Hashtbl.create 8; obs; renewals = 0; replacements = 0 }

(* An attacker who can deposit under a victim's DN silently hijacks every
   later renewal, so a replacement is never silent: it is reported to the
   caller and audited. *)
let deposit t ~(identity : Identity.t) ~authorized_renewers
    ?(max_proxy_lifetime = Grid_sim.Clock.hours 12.0) ~now () =
  let owner = Dn.to_string (Identity.effective_subject identity) in
  let replaced = Hashtbl.mem t.deposits owner in
  Hashtbl.replace t.deposits owner
    { identity; authorized_renewers; max_proxy_lifetime; deposited_at = now };
  if replaced then begin
    t.replacements <- t.replacements + 1;
    Grid_obs.Obs.incr t.obs "renewal_redeposits_total";
    Grid_obs.Obs.emit t.obs ~layer:"gsi" "renewal.redeposit"
      [ ("owner", owner); ("at", Printf.sprintf "%.6f" now) ];
    `Replaced
  end
  else `Deposited

let has_deposit t owner = Hashtbl.mem t.deposits (Dn.to_string owner)

let renewals t = t.renewals
let replacements t = t.replacements

(* Draw a fresh proxy of [owner]'s escrowed identity. The renewer
   authenticates with their own credential; self-renewal (owner drawing
   their own fresh proxy) is always permitted. *)
let renew t ~(trust : Ca.Trust_store.store) ~now ?lifetime ~owner
    (renewer_credential : Credential.t) : (Identity.t, error) result =
  match Hashtbl.find_opt t.deposits (Dn.to_string owner) with
  | None -> Error (No_deposit owner)
  | Some deposit -> begin
    match
      Credential.validate renewer_credential ~trust ~now
    with
    | Error e -> Error (Renewer_authentication_failed (Credential.error_to_string e))
    | Ok renewer ->
      if
        not
          (Dn.equal renewer owner
          || List.exists (Dn.equal renewer) deposit.authorized_renewers)
      then Error (Renewer_not_authorized { owner; renewer })
      else if not (Cert.valid_at (Identity.certificate deposit.identity) ~now) then
        Error (Escrowed_credential_expired owner)
      else begin
        let lifetime =
          match lifetime with
          | Some l -> Float.min l deposit.max_proxy_lifetime
          | None -> deposit.max_proxy_lifetime
        in
        t.renewals <- t.renewals + 1;
        Ok (Identity.delegate deposit.identity ~now ~lifetime)
      end
  end
